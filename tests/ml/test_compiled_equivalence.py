"""Differential tests: compiled inference vs the object reference path.

Everything the compiled engine touches — the structure-of-arrays tree
descent, the fused analyzer batch plan, the batched FCBF counting and
the vectorized NB/SVM scoring — claims *bit-identity* with the original
per-node / per-pair / per-class implementations.  These tests hold that
claim against Hypothesis-driven random models and feature matrices,
including the unpleasant corners: NaNs and ±inf in live features, empty
batches, single-class (root-leaf) trees, heterogeneous row key sets and
missing normalisation totals.
"""

from __future__ import annotations

import contextlib
import json
import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dataset import Dataset, Instance
from repro.core.diagnosis import RootCauseAnalyzer
from repro.ml.compiled import PREDICT_MODE_ENV, TreePlan, predict_mode
from repro.ml.naive_bayes import GaussianNB
from repro.ml.svm import LinearSVM
from repro.ml.tree import C45Tree


@contextlib.contextmanager
def predict_engine(mode):
    """Temporarily select a prediction engine via the environment."""
    before = os.environ.get(PREDICT_MODE_ENV)
    os.environ[PREDICT_MODE_ENV] = mode
    try:
        yield
    finally:
        if before is None:
            os.environ.pop(PREDICT_MODE_ENV, None)
        else:
            os.environ[PREDICT_MODE_ENV] = before


def _random_tree(seed, n_classes=None):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 90))
    f = int(rng.integers(1, 7))
    k = n_classes if n_classes is not None else int(rng.integers(1, 5))
    X = rng.normal(0, 1, (n, f)).round(2)  # rounding forces value ties
    y = rng.integers(0, k, n).astype(str)
    tree = C45Tree(min_leaf=int(rng.integers(1, 4))).fit(X, y)
    return tree, X, rng


def _eval_matrix(rng, f, n_rows):
    """An evaluation batch salted with NaN, +/-inf and repeated values."""
    X = rng.normal(0, 1, (n_rows, f)).round(2)
    if n_rows:
        flat = X.reshape(-1)
        idx = rng.integers(0, flat.size, max(1, flat.size // 8))
        flat[idx[0::3]] = np.nan
        flat[idx[1::3]] = np.inf
        flat[idx[2::3]] = -np.inf
    return X


# ------------------------------------------------------------------ trees


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_tree_predict_bitwise_identical_across_engines(seed):
    tree, _Xtr, rng = _random_tree(seed)
    X = _eval_matrix(rng, tree.n_features, int(rng.integers(0, 40)))
    with predict_engine("object"):
        ref = tree.predict(X)
    with predict_engine("compiled"):
        got = tree.predict(X)
    assert got.dtype == ref.dtype
    assert np.array_equal(got, ref)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_predict_one_matches_batch_row_for_row(seed):
    tree, _Xtr, rng = _random_tree(seed)
    X = _eval_matrix(rng, tree.n_features, 10)
    with predict_engine("compiled"):
        batch = tree.predict(X)
        singles = [tree.predict_one(list(row)) for row in X]
    with predict_engine("object"):
        singles_obj = [tree.predict_one(list(row)) for row in X]
    assert list(batch) == singles == singles_obj


def test_single_class_tree_is_a_root_leaf():
    tree, _Xtr, rng = _random_tree(7, n_classes=1)
    plan = tree.compiled_plan()
    assert plan.n_nodes == 1 and bool(plan.is_leaf[0])
    X = _eval_matrix(rng, tree.n_features, 6)
    with predict_engine("compiled"):
        got = tree.predict(X)
    with predict_engine("object"):
        ref = tree.predict(X)
    assert np.array_equal(got, ref)
    assert set(got) == set(tree.classes_)


def test_empty_batch_both_engines():
    tree, _Xtr, _rng = _random_tree(3)
    X = np.zeros((0, tree.n_features))
    for mode in ("object", "compiled"):
        with predict_engine(mode):
            out = tree.predict(X)
        assert out.shape == (0,)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_plan_structure_invariants(seed):
    tree, _Xtr, _rng = _random_tree(seed)
    plan = TreePlan.from_root(tree.root)
    n = plan.n_nodes
    assert n == tree.n_nodes
    ids = np.arange(n)
    # leaves self-loop so a descent step parks them; interior nodes step
    assert np.array_equal(plan.left[plan.is_leaf], ids[plan.is_leaf])
    assert np.array_equal(plan.right[plan.is_leaf], ids[plan.is_leaf])
    interior = ~plan.is_leaf
    assert (plan.left[interior] != ids[interior]).all()
    assert (plan.right[interior] != ids[interior]).all()
    assert (plan.leaf_label >= 0).all()
    assert (plan.leaf_label < len(tree.classes_)).all()
    # preorder: every child index is greater than its parent's
    assert (plan.left[interior] > ids[interior]).all()
    assert (plan.right[interior] > ids[interior]).all()


def test_nan_routes_right_like_python_comparison():
    # One split at 0.0: NaN <= 0.0 is False, so NaN rows take the right
    # child in both engines, like the scalar comparison in C4.5.
    X = np.array([[-1.0], [-0.5], [0.5], [1.0]] * 3)
    y = np.array(["l"] * 6 + ["r"] * 6)
    X[:6] = -abs(X[:6])
    X[6:] = abs(X[6:])
    tree = C45Tree(min_leaf=1, prune=False).fit(X, y)
    probe = np.array([[np.nan], [np.inf], [-np.inf]])
    with predict_engine("compiled"):
        got = tree.predict(probe)
    with predict_engine("object"):
        ref = tree.predict(probe)
    assert np.array_equal(got, ref)
    assert got[0] == got[1] == "r"
    assert got[2] == "l"


def test_predict_mode_validation():
    with predict_engine("compiled"):
        assert predict_mode() == "compiled"
    with predict_engine("bogus"):
        with pytest.raises(ValueError, match="REPRO_ML_PREDICT"):
            predict_mode()


# --------------------------------------------------------------- analyzer


def _mini_analyzer(seed, select):
    rng = np.random.default_rng(seed)
    names = (
        [f"mobile_tcp_c2s_{c}" for c in ("pkts", "bytes", "data_pkts", "retx_pkts")]
        + ["mobile_tcp_rtt_avg", "mobile_tcp_flow_duration",
           "mobile_link_tx_rate", "mobile_hw_cpu_avg"]
    )

    def features():
        return {n: float(v) for n, v in zip(names, rng.uniform(1, 100, len(names)))}

    instances = []
    for _ in range(40):
        f = features()
        sev = "good" if f["mobile_tcp_rtt_avg"] < 50 else "severe"
        instances.append(
            Instance(
                features=f,
                labels={
                    "severity": sev,
                    "location": "good" if sev == "good" else "wan_severe",
                    "exact": "good" if sev == "good" else "wan_congestion_severe",
                    "existence": "good" if sev == "good" else "problematic",
                },
                meta={"session_s": 30.0},
            )
        )
    analyzer = RootCauseAnalyzer(vps=("mobile",), select=select).fit(
        Dataset(instances)
    )
    return analyzer, features


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=0, max_value=2_000),
    st.booleans(),
    st.sampled_from(["homogeneous", "reordered", "ragged", "mixed"]),
)
def test_diagnose_batch_reports_identical_across_engines(seed, select, shape):
    analyzer, features = _mini_analyzer(seed % 5, select)
    rng = np.random.default_rng(seed)
    sessions = []
    for i in range(14):
        f = features()
        if shape == "ragged" and i % 3 == 0:
            f.pop("mobile_tcp_c2s_pkts", None)  # missing norm total
        if shape == "reordered" and i % 2 == 0:
            f = dict(reversed(list(f.items())))
        if shape == "mixed" and i % 2 == 0:
            sessions.append(f)  # bare dict, no session_s
            continue
        sessions.append(
            Instance(features=f, labels={}, meta={"session_s": 20.0 + i})
        )
    with predict_engine("object"), warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        ref = analyzer.diagnose_batch(sessions)
    with predict_engine("compiled"), warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        got = analyzer.diagnose_batch(sessions)
    assert [r.to_dict() for r in got] == [r.to_dict() for r in ref]
    assert [r.to_json(sort_keys=True) for r in got] == [
        r.to_json(sort_keys=True) for r in ref
    ]


def test_diagnose_single_matches_batch_under_compiled():
    analyzer, features = _mini_analyzer(1, True)
    sessions = [
        Instance(features=features(), labels={}, meta={"session_s": 25.0})
        for _ in range(8)
    ]
    with predict_engine("compiled"):
        batch = analyzer.diagnose_batch(sessions)
        singles = [analyzer.diagnose(s) for s in sessions]
    assert [r.to_dict() for r in batch] == [r.to_dict() for r in singles]


def test_zero_fill_warning_parity_across_engines():
    """Both engines warn once, with the same text, about missing totals."""
    messages = {}
    for mode in ("object", "compiled"):
        analyzer, features = _mini_analyzer(2, False)
        rows = []
        for _ in range(5):
            f = features()
            f.pop("mobile_tcp_c2s_pkts")  # the _norm totals go missing
            rows.append(f)
        with predict_engine(mode):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                analyzer.diagnose_batch(rows)
                analyzer.diagnose_batch(rows)  # second batch must not re-warn
        zero_fill = [
            w for w in caught if "zero-filled" in str(w.message)
        ]
        assert len(zero_fill) == 1, mode
        messages[mode] = str(zero_fill[0].message)
    assert messages["object"] == messages["compiled"]


def test_plan_cache_invalidated_on_refit():
    analyzer, features = _mini_analyzer(3, True)
    rows = [features() for _ in range(4)]
    with predict_engine("compiled"):
        first = analyzer.diagnose_batch(rows)
        assert analyzer.compiled()._plans  # plan built and cached
        analyzer.fit(
            Dataset(
                [
                    Instance(
                        features=dict(row),
                        labels={
                            "severity": "good",
                            "location": "good",
                            "exact": "good",
                            "existence": "good",
                        },
                        meta={"session_s": 30.0},
                    )
                    for row in [features() for _ in range(40)]
                ]
            )
        )
        assert not analyzer.compiled()._plans  # cache dropped with the refit
        second = analyzer.diagnose_batch(rows)
    assert len(first) == len(second)


# ------------------------------------------------- NB / SVM vectorization


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=5_000))
def test_gaussian_nb_scores_bitwise_equal_per_class_loop(seed):
    rng = np.random.default_rng(seed)
    n, f, k = int(rng.integers(2, 60)), int(rng.integers(1, 9)), int(rng.integers(1, 5))
    Xtr = rng.normal(0, 2, (n, f))
    ytr = rng.integers(0, k, n).astype(str)
    nb = GaussianNB().fit(Xtr, ytr)
    X = rng.normal(0, 2, (int(rng.integers(0, 50)), f))

    # the original per-class formulation, verbatim
    ref_scores = np.empty((len(X), len(nb.classes_)))
    for c in range(len(nb.classes_)):
        var = nb._vars[c]
        diff = X - nb._means[c]
        log_lik = -0.5 * (np.log(2.0 * np.pi * var) + diff * diff / var)
        ref_scores[:, c] = log_lik.sum(axis=1) + nb._log_priors[c]
    ref = nb.classes_[np.argmax(ref_scores, axis=1)]
    assert np.array_equal(nb.predict(X), ref)


def test_linear_svm_margins_and_predict_one():
    rng = np.random.default_rng(0)
    Xtr = rng.normal(0, 1, (80, 6))
    ytr = rng.integers(0, 3, 80).astype(str)
    svm = LinearSVM(epochs=3).fit(Xtr, ytr)
    X = rng.normal(0, 1, (40, 6))
    scores = svm.decision_function(X)
    ref = (X - svm._mu) / svm._sigma @ svm._weights.T + svm._bias
    assert np.array_equal(scores, ref)
    assert np.array_equal(svm.predict(X), svm.classes_[np.argmax(ref, axis=1)])
    assert svm.predict_one(X[0]) == svm.predict(X[:1])[0]
    nb = GaussianNB().fit(Xtr, ytr)
    assert nb.predict_one(X[0]) == nb.predict(X[:1])[0]


# ----------------------------------------------------------- FCBF counting


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=5_000))
def test_su_bincount_counting_equals_sorted_unique(seed):
    from repro.ml.fcbf import _joint_entropy, symmetrical_uncertainty

    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 80))
    x = rng.integers(-3, 9, n)
    y = rng.integers(0, 6, n)

    def entropy_ref(v):
        _, counts = np.unique(v, return_counts=True)
        p = counts / counts.sum()
        return float(-(p * np.log2(p)).sum())

    hx, hy = entropy_ref(x), entropy_ref(y)
    if hx == 0.0 and hy == 0.0:
        expected = 1.0
    elif hx == 0.0 or hy == 0.0:
        expected = 0.0
    else:
        joint = x.astype(np.int64) * (int(y.max()) + 1) + y.astype(np.int64)
        expected = max(0.0, 2.0 * (hx + hy - entropy_ref(joint)) / (hx + hy))
    assert symmetrical_uncertainty(x, y) == expected
    assert _joint_entropy(x, y) == entropy_ref(
        x.astype(np.int64) * (int(y.max()) + 1) + y.astype(np.int64)
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1_000))
def test_fcbf_selection_matches_per_pair_reference(seed):
    from repro.ml.fcbf import fcbf, symmetrical_uncertainty

    rng = np.random.default_rng(seed)
    n, f = 80, 8
    base = rng.integers(0, 3, (n, 3))
    Xd = np.column_stack(
        [base[:, int(rng.integers(0, 3))] + rng.integers(0, 2, n) for _ in range(f)]
    )
    y = base[:, 0] * 2 + base[:, 1]

    _, y_codes = np.unique(y, return_inverse=True)
    su_class = np.array(
        [symmetrical_uncertainty(Xd[:, j], y_codes) for j in range(f)]
    )
    candidates = [j for j in range(f) if su_class[j] > 0.0]
    candidates.sort(key=lambda j: -su_class[j])
    expected, removed = [], set()
    for i, fj in enumerate(candidates):
        if fj in removed:
            continue
        expected.append(fj)
        for fk in candidates[i + 1 :]:
            if fk in removed:
                continue
            if symmetrical_uncertainty(Xd[:, fk], Xd[:, fj]) >= su_class[fk]:
                removed.add(fk)

    selected, su_map = fcbf(Xd, y, delta=0.0, prediscretized=True)
    assert selected == expected
    assert all(su_map[str(j)] == su_class[j] for j in range(f))

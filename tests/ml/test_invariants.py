"""Seeded invariant tests for the ML kernels.

These pin the *structural* guarantees the paper's pipeline relies on —
partition exactness and balance for stratified CV, cut-point sanity for
MDL discretisation, ordering and redundancy-elimination for FCBF — over
many randomly generated inputs, not just the happy-path fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.cross_validation import stratified_kfold
from repro.ml.discretize import apply_cuts, mdl_discretize
from repro.ml.fcbf import fcbf, symmetrical_uncertainty


def _random_labels(rng: np.random.Generator):
    """A random label vector with 2-5 classes and 12-80 instances."""
    n_classes = int(rng.integers(2, 6))
    n = int(rng.integers(12, 81))
    labels = rng.integers(0, n_classes, size=n)
    # ensure at least 2 distinct classes are actually present
    labels[0], labels[1] = 0, 1
    return np.array([f"class_{c}" for c in labels])


class TestStratifiedKFoldInvariants:
    @pytest.mark.parametrize("case", range(50))
    def test_partition_and_balance(self, case):
        rng = np.random.default_rng(1000 + case)
        y = _random_labels(rng)
        k = int(rng.integers(2, min(10, len(y)) + 1))
        splits = stratified_kfold(y, k=k, seed=case)
        assert len(splits) == k

        # every index lands in exactly one test fold...
        all_test = np.concatenate([test for _train, test in splits])
        assert sorted(all_test.tolist()) == list(range(len(y)))
        for train, test in splits:
            # ...and each split is an exact partition of the dataset
            assert len(np.intersect1d(train, test)) == 0
            assert len(train) + len(test) == len(y)

        # per-class fold sizes differ by at most one
        for label in np.unique(y):
            class_idx = set(np.nonzero(y == label)[0].tolist())
            per_fold = [len(class_idx.intersection(test.tolist()))
                        for _train, test in splits]
            assert max(per_fold) - min(per_fold) <= 1

    @pytest.mark.parametrize("case", range(10))
    def test_reproducible_for_fixed_seed(self, case):
        rng = np.random.default_rng(2000 + case)
        y = _random_labels(rng)
        first = stratified_kfold(y, k=4, seed=123)
        second = stratified_kfold(y, k=4, seed=123)
        for (tr1, te1), (tr2, te2) in zip(first, second):
            assert np.array_equal(tr1, tr2)
            assert np.array_equal(te1, te2)

    def test_rejects_too_few_instances(self):
        with pytest.raises(ValueError):
            stratified_kfold(np.array(["a", "b", "a"]), k=4)


class TestDiscretizeInvariants:
    @pytest.mark.parametrize("case", range(20))
    def test_cut_points_sorted_strict_and_in_range(self, case):
        rng = np.random.default_rng(3000 + case)
        n = int(rng.integers(20, 200))
        values = rng.normal(0, 1, n)
        labels = (values + rng.normal(0, 0.4, n) > 0).astype(int)
        cuts = mdl_discretize(values, labels)
        assert cuts == sorted(cuts)
        assert all(b > a for a, b in zip(cuts, cuts[1:]))
        if cuts:
            assert values.min() < cuts[0]
            assert cuts[-1] < values.max()

    @pytest.mark.parametrize("case", range(20))
    def test_apply_cuts_is_monotone(self, case):
        rng = np.random.default_rng(4000 + case)
        values = rng.normal(0, 2, 100)
        labels = (values > 0.5).astype(int)
        cuts = mdl_discretize(values, labels)
        bins = apply_cuts(values, cuts)
        assert bins.min() >= 0
        assert bins.max() <= len(cuts)
        order = np.argsort(values, kind="mergesort")
        sorted_bins = bins[order]
        assert np.all(np.diff(sorted_bins) >= 0)

    def test_permutation_invariance(self):
        rng = np.random.default_rng(5)
        values = rng.normal(0, 1, 80)
        labels = (values > 0).astype(int)
        cuts = mdl_discretize(values, labels)
        perm = rng.permutation(80)
        assert mdl_discretize(values[perm], labels[perm]) == cuts

    def test_uninformative_attribute_gets_no_cuts(self):
        rng = np.random.default_rng(6)
        values = rng.normal(0, 1, 100)
        labels = rng.integers(0, 2, 100)  # independent of the values
        assert mdl_discretize(values, labels) == []

    def test_constant_attribute_gets_no_cuts(self):
        values = np.full(50, 3.25)
        labels = np.arange(50) % 2
        assert mdl_discretize(values, labels) == []
        assert np.all(apply_cuts(values, []) == 0)


def _fcbf_matrix(rng: np.random.Generator, n: int = 150):
    """Columns: strongly informative, weaker, duplicate, noise."""
    y = rng.integers(0, 2, n)
    strong = y * 2.0 + rng.normal(0, 0.2, n)
    weak = y * 1.0 + rng.normal(0, 0.8, n)
    noise = rng.normal(0, 1, n)
    X = np.column_stack([strong, strong, weak, noise])
    return X, np.array(["bad", "good"])[y]


class TestFCBFInvariants:
    @pytest.mark.parametrize("case", range(10))
    def test_selection_order_is_decreasing_su(self, case):
        rng = np.random.default_rng(6000 + case)
        X, y = _fcbf_matrix(rng)
        names = ["strong", "dup", "weak", "noise"]
        selected, su_map = fcbf(X, y, delta=0.0, feature_names=names)
        sus = [su_map[names[j]] for j in selected]
        assert sus == sorted(sus, reverse=True)

    @pytest.mark.parametrize("case", range(10))
    def test_selected_su_exceeds_delta(self, case):
        rng = np.random.default_rng(7000 + case)
        X, y = _fcbf_matrix(rng)
        delta = 0.05
        selected, su_map = fcbf(X, y, delta=delta)
        for j in selected:
            assert su_map[str(j)] > delta

    def test_duplicate_column_is_redundant(self):
        rng = np.random.default_rng(8)
        X, y = _fcbf_matrix(rng)
        selected, _su = fcbf(X, y, delta=0.0)
        # columns 0 and 1 are identical: an approximate Markov blanket —
        # at most one of the pair survives
        assert len({0, 1}.intersection(selected)) == 1

    def test_deterministic(self):
        rng = np.random.default_rng(9)
        X, y = _fcbf_matrix(rng)
        first = fcbf(X, y, delta=0.01)
        second = fcbf(X, y, delta=0.01)
        assert first == second

    def test_su_bounds_and_symmetry(self):
        rng = np.random.default_rng(10)
        a = rng.integers(0, 3, 200)
        b = rng.integers(0, 3, 200)
        su_ab = symmetrical_uncertainty(a, b)
        su_ba = symmetrical_uncertainty(b, a)
        assert su_ab == pytest.approx(su_ba)
        assert 0.0 <= su_ab <= 1.0
        assert symmetrical_uncertainty(a, a) == pytest.approx(1.0)

"""Unit and property tests for MDL discretisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.discretize import apply_cuts, mdl_discretize


def test_clean_two_class_split_found():
    rng = np.random.default_rng(0)
    x = np.concatenate([rng.normal(0, 0.3, 200), rng.normal(5, 0.3, 200)])
    y = np.array([0] * 200 + [1] * 200)
    cuts = mdl_discretize(x, y)
    assert len(cuts) >= 1
    assert 1.0 < cuts[0] < 4.0


def test_uninformative_feature_gets_no_cuts():
    rng = np.random.default_rng(1)
    x = rng.normal(0, 1, 400)
    y = rng.integers(0, 2, 400)
    assert mdl_discretize(x, y) == []


def test_three_class_staircase():
    rng = np.random.default_rng(2)
    y = np.repeat([0, 1, 2], 150)
    x = y * 10 + rng.normal(0, 0.5, 450)
    cuts = mdl_discretize(x, y)
    assert len(cuts) == 2


def test_constant_feature_no_cuts():
    x = np.ones(100)
    y = np.array([0, 1] * 50)
    assert mdl_discretize(x, y) == []


def test_tiny_input_no_cuts():
    assert mdl_discretize(np.array([1.0, 2.0]), np.array([0, 1])) == []


def test_apply_cuts_bins():
    cuts = [1.0, 3.0]
    bins = apply_cuts(np.array([0.0, 1.0, 2.0, 3.5]), cuts)
    assert list(bins) == [0, 0, 1, 2]


def test_apply_no_cuts_single_bin():
    bins = apply_cuts(np.array([1.0, 5.0]), [])
    assert list(bins) == [0, 0]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_property_cuts_sorted_and_within_range(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 2, 200)
    y = (x + rng.normal(0, 1, 200) > 0).astype(int)
    cuts = mdl_discretize(x, y)
    assert cuts == sorted(cuts)
    for cut in cuts:
        assert x.min() <= cut <= x.max()

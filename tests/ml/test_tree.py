"""Unit and property tests for the C4.5 tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tree import C45Tree, _upper_error


def _blobs(n=300, seed=0, noise=0.3):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 3, n)
    X = rng.normal(0, noise, (n, 4))
    X[:, 0] += y * 2.0
    X[:, 2] -= y * 1.5
    return X, np.array(["a", "b", "c"])[y]


def test_fits_separable_data_perfectly():
    X, y = _blobs(noise=0.05)
    tree = C45Tree().fit(X, y)
    assert (tree.predict(X) == y).mean() > 0.99


def test_generalises_to_held_out():
    X, y = _blobs(seed=1)
    Xt, yt = _blobs(seed=2)
    tree = C45Tree().fit(X, y)
    assert (tree.predict(Xt) == yt).mean() > 0.85


def test_labels_restored_as_strings():
    X, y = _blobs()
    tree = C45Tree().fit(X, y)
    assert set(tree.predict(X)) <= {"a", "b", "c"}


def test_single_class_becomes_single_leaf():
    X = np.random.default_rng(0).normal(0, 1, (50, 3))
    y = np.array(["only"] * 50)
    tree = C45Tree().fit(X, y)
    assert tree.n_nodes == 1
    assert all(tree.predict(X) == "only")


def test_min_leaf_respected():
    X, y = _blobs(n=200)
    tree = C45Tree(min_leaf=30).fit(X, y)

    def check(node):
        if node is None:
            return
        assert node.n >= 30 or node.is_leaf
        if not node.is_leaf:
            check(node.left)
            check(node.right)

    check(tree.root)


def test_max_depth_cap():
    X, y = _blobs(n=400, noise=1.5)
    tree = C45Tree(max_depth=2).fit(X, y)
    assert tree.depth <= 2


def test_pruning_shrinks_noisy_tree():
    X, y = _blobs(n=400, seed=3, noise=1.8)  # heavily overlapping classes
    pruned = C45Tree(cf=0.25, prune=True).fit(X, y)
    unpruned = C45Tree(cf=0.25, prune=False).fit(X, y)
    assert pruned.n_nodes < unpruned.n_nodes


def test_importance_credits_informative_features_only():
    X, y = _blobs()
    tree = C45Tree().fit(X, y, feature_names=["f0", "f1", "f2", "f3"])
    imp = tree.feature_importance()
    # f0/f2 carry the signal (either suffices); f1/f3 are pure noise.
    assert imp.get("f0", 0) + imp.get("f2", 0) > 0.9
    assert imp.get("f1", 0) < 0.1
    assert imp.get("f3", 0) < 0.1


def test_to_text_renders():
    X, y = _blobs()
    tree = C45Tree().fit(X, y, feature_names=["f0", "f1", "f2", "f3"])
    text = tree.to_text()
    assert "f0" in text or "f2" in text
    assert "->" in text


def test_predict_before_fit_rejected():
    with pytest.raises(RuntimeError):
        C45Tree().predict(np.zeros((1, 3)))


def test_invalid_min_leaf():
    with pytest.raises(ValueError):
        C45Tree(min_leaf=0)


def test_one_dimensional_x_rejected():
    with pytest.raises(ValueError):
        C45Tree().fit(np.zeros(10), np.zeros(10))


def test_upper_error_monotone_in_errors():
    assert _upper_error(100, 0, 0.674) < _upper_error(100, 10, 0.674)
    assert _upper_error(100, 10, 0.674) < _upper_error(100, 50, 0.674)


def test_upper_error_bounds():
    assert _upper_error(0, 0, 0.674) == 0.0
    assert 0.0 < _upper_error(50, 0, 0.674) < 0.1


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_property_predictions_are_known_classes(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (80, 3))
    y = rng.integers(0, 3, 80).astype(str)
    tree = C45Tree().fit(X, y)
    Xt = rng.normal(0, 3, (40, 3))
    assert set(tree.predict(Xt)) <= set(np.unique(y))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=100))
def test_property_training_beats_majority_when_separable(seed):
    X, y = _blobs(seed=seed, noise=0.2)
    tree = C45Tree().fit(X, y)
    accuracy = (tree.predict(X) == y).mean()
    majority = max(np.bincount(np.unique(y, return_inverse=True)[1])) / len(y)
    assert accuracy >= majority

"""Public API contract: exports exist, are documented, and import cleanly."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.simnet",
    "repro.simnet.engine",
    "repro.simnet.packet",
    "repro.simnet.link",
    "repro.simnet.node",
    "repro.simnet.tcp",
    "repro.simnet.udp",
    "repro.simnet.wireless",
    "repro.simnet.cellular",
    "repro.simnet.congestion",
    "repro.simnet.trace",
    "repro.video",
    "repro.video.catalog",
    "repro.video.mos",
    "repro.video.player",
    "repro.video.server",
    "repro.video.session",
    "repro.video.abr",
    "repro.probes",
    "repro.probes.tstat",
    "repro.probes.hardware",
    "repro.probes.radio",
    "repro.probes.rnc",
    "repro.probes.link",
    "repro.probes.application",
    "repro.faults",
    "repro.faults.base",
    "repro.faults.unknown",
    "repro.traffic",
    "repro.testbed",
    "repro.testbed.testbed",
    "repro.testbed.campaign",
    "repro.testbed.realworld",
    "repro.testbed.cellular",
    "repro.testbed.devices",
    "repro.ml",
    "repro.core",
    "repro.api",
    "repro.serve",
    "repro.serve.batcher",
    "repro.serve.registry",
    "repro.serve.http",
    "repro.obs",
    "repro.obs.telemetry",
    "repro.obs.trace",
    "repro.obs.report",
    "repro.obs.flow",
    "repro.experiments",
    "repro.cli",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, name


@pytest.mark.parametrize("name", [m for m in PUBLIC_MODULES if "." in m])
def test_public_classes_documented(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    members = (
        [getattr(module, n) for n in exported]
        if exported
        else [obj for _n, obj in inspect.getmembers(module, inspect.isclass)
              if obj.__module__ == name]
    )
    for obj in members:
        if inspect.isclass(obj):
            assert obj.__doc__, f"{name}.{obj.__name__} lacks a docstring"


def test_dunder_all_resolves():
    for name in ("repro", "repro.simnet", "repro.ml", "repro.core",
                 "repro.probes", "repro.faults", "repro.video",
                 "repro.testbed", "repro.traffic", "repro.obs",
                 "repro.api", "repro.serve"):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)

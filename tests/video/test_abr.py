"""Tests for the adaptive-bitrate streaming extension."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.video.abr import (
    AbrController,
    AbrVideoServer,
    AbrVideoSession,
    DEFAULT_LADDER,
)
from repro.video.catalog import VideoProfile

PROFILE = VideoProfile("v", "HD", "720p", 1.8e6, 40.0)


def build(rate=10e6, delay=0.02, seed=0, loss=0.0):
    sim = Simulator(seed=seed)
    server = Host(sim, "server")
    phone = Host(sim, "phone")
    wire(sim, server, "eth0", phone, "eth0",
         Channel(sim, "down", rate, delay=delay, loss=loss),
         Channel(sim, "up", rate, delay=delay))
    server.set_default_route(server.interfaces["eth0"])
    phone.set_default_route(phone.interfaces["eth0"])
    return sim, server, phone


def run_session(rate, seed=0, until=300.0):
    sim, server_node, phone = build(rate=rate, seed=seed)
    server = AbrVideoServer(sim, server_node)
    session = AbrVideoSession(sim, phone, server, PROFILE)
    session.start()
    sim.run(until=until)
    return session


class TestController:
    def test_starts_conservative(self):
        assert AbrController().level == 0

    def test_ramps_up_with_throughput(self):
        ctl = AbrController()
        for _ in range(10):
            ctl.observe_segment(bits=8e6, seconds=1.0)  # 8 Mbit/s
            ctl.next_level(buffer_s=10.0)
        assert ctl.bitrate == max(DEFAULT_LADDER)

    def test_one_rung_at_a_time(self):
        ctl = AbrController()
        ctl.observe_segment(bits=80e6, seconds=1.0)
        before = ctl.level
        ctl.next_level(buffer_s=10.0)
        assert ctl.level == before + 1

    def test_steps_down_on_low_throughput(self):
        ctl = AbrController()
        for _ in range(6):
            ctl.observe_segment(bits=8e6, seconds=1.0)
            ctl.next_level(buffer_s=10.0)
        for _ in range(6):
            ctl.observe_segment(bits=0.5e6, seconds=1.0)
            ctl.next_level(buffer_s=4.0)
        assert ctl.bitrate == min(DEFAULT_LADDER)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            AbrController(ladder=())


class TestAbrSession:
    def test_completes_on_fast_link(self):
        session = run_session(rate=20e6, seed=1)
        assert session.finished
        m = session.player.metrics
        assert m.completed and not m.abandoned
        assert session.severity() == "good"
        assert session.abr.segments >= PROFILE.duration_s / 4.0 - 1

    def test_reaches_top_quality_on_fast_link(self):
        session = run_session(rate=20e6, seed=2)
        assert max(session.abr.level_history) == len(DEFAULT_LADDER) - 1
        assert session.abr.average_bitrate > 1.0e6

    def test_stays_low_on_slow_link(self):
        session = run_session(rate=0.9e6, seed=3, until=600.0)
        assert session.abr.average_bitrate < 0.9e6
        assert max(session.abr.level_history) <= 2

    def test_abr_avoids_stalls_where_progressive_fails(self):
        """The adaptation benefit: on a 1.2 Mb/s link an 1.8 Mb/s video
        stalls badly when streamed progressively but plays adaptively."""
        from repro.video.server import VideoServer
        from repro.video.session import VideoSession

        # progressive
        sim, server_node, phone = build(rate=1.2e6, seed=4)
        vs = VideoServer(sim, server_node, port=80)
        prog = VideoSession(sim, phone, vs, PROFILE)
        prog.start()
        sim.run(until=600.0)

        abr = run_session(rate=1.2e6, seed=4, until=600.0)

        prog_stalls = prog.player.metrics.qoe_stall_count
        abr_stalls = abr.player.metrics.qoe_stall_count
        assert abr_stalls < prog_stalls
        assert abr.severity() in ("good", "mild")

    def test_switch_count_recorded(self):
        session = run_session(rate=20e6, seed=5)
        assert session.abr.switches >= 1
        assert len(session.abr.level_history) == session.abr.segments or \
            len(session.abr.level_history) >= session.abr.segments

    def test_double_start_rejected(self):
        sim, server_node, phone = build()
        server = AbrVideoServer(sim, server_node)
        session = AbrVideoSession(sim, phone, server, PROFILE)
        session.start()
        with pytest.raises(RuntimeError):
            session.start()

"""Unit and property tests for the Mok et al. MOS model."""

import pytest
from hypothesis import given, strategies as st

from repro.video.mos import (
    GOOD_THRESHOLD,
    MILD_THRESHOLD,
    MosModel,
    mos_to_severity,
)

model = MosModel()


def test_perfect_session_is_good():
    result = model.score(0.5, 0, 0.0, 60.0)
    assert result.mos == pytest.approx(4.23 - 0.0672 - 0.742 - 0.106)
    assert mos_to_severity(result.mos) == "good"


def test_levels_for_perfect_session():
    result = model.score(0.5, 0, 0.0, 60.0)
    assert (result.level_ti, result.level_fr, result.level_td) == (1, 1, 1)


def test_never_started_is_severe():
    result = model.score(0.0, 0, 0.0, 0.0, started=False)
    assert result.mos == 1.0
    assert mos_to_severity(result.mos) == "severe"


def test_worst_case_is_severe():
    result = model.score(30.0, 30, 300.0, 100.0)
    assert result.mos == pytest.approx(4.23 - 3 * (0.0672 + 0.742 + 0.106))
    assert mos_to_severity(result.mos) == "severe"


def test_single_long_stall_is_not_good():
    # One 20s stall in a 70s session: freq low but duration level high.
    result = model.score(1.5, 1, 20.0, 70.0)
    assert result.level_td == 3
    assert result.mos < 3.1


def test_frequency_drives_score():
    rare = model.score(0.5, 1, 4.0, 100.0)
    frequent = model.score(0.5, 20, 4.0, 100.0)
    assert frequent.mos < rare.mos


def test_startup_levels():
    assert model.score(0.9, 0, 0, 60).level_ti == 1
    assert model.score(3.0, 0, 0, 60).level_ti == 2
    assert model.score(8.0, 0, 0, 60).level_ti == 3


def test_severity_thresholds():
    assert mos_to_severity(GOOD_THRESHOLD + 0.01) == "good"
    assert mos_to_severity(GOOD_THRESHOLD) == "mild"
    assert mos_to_severity(MILD_THRESHOLD) == "mild"
    assert mos_to_severity(MILD_THRESHOLD - 0.01) == "severe"


@given(
    startup=st.floats(min_value=0, max_value=60),
    stalls=st.integers(min_value=0, max_value=50),
    stall_time=st.floats(min_value=0, max_value=300),
    duration=st.floats(min_value=1, max_value=600),
)
def test_property_mos_bounded(startup, stalls, stall_time, duration):
    result = model.score(startup, stalls, stall_time, duration)
    assert 1.0 <= result.mos <= 4.23
    assert result.level_ti in (1, 2, 3)
    assert result.level_fr in (1, 2, 3)
    assert result.level_td in (1, 2, 3)


@given(
    startup=st.floats(min_value=0, max_value=60),
    duration=st.floats(min_value=1, max_value=600),
)
def test_property_monotone_in_stalls(startup, duration):
    """More stalls of the same mean duration never improve the score.

    (With *fixed total* stall time, Mok's regression can rate many short
    stalls slightly above few long ones -- the duration level drops -- so
    the honest invariant holds the mean stall duration constant.)
    """
    few = model.score(startup, 2, 2 * 5.0, duration)
    many = model.score(startup, 25, 25 * 5.0, duration)
    assert many.mos <= few.mos + 1e-9

"""Integration tests: video server + session over a simple topology."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.video.catalog import VideoProfile
from repro.video.server import VideoServer
from repro.video.session import VideoSession

PROFILE = VideoProfile("v", "SD", "360p", 8e5, 15.0)


def build(rate=10e6, delay=0.01, seed=0):
    sim = Simulator(seed=seed)
    server = Host(sim, "server")
    phone = Host(sim, "phone")
    wire(sim, server, "eth0", phone, "eth0",
         Channel(sim, "down", rate, delay=delay),
         Channel(sim, "up", rate, delay=delay))
    server.set_default_route(server.interfaces["eth0"])
    phone.set_default_route(phone.interfaces["eth0"])
    return sim, server, phone


@pytest.mark.parametrize("mode", ["apache", "youtube"])
def test_session_completes(mode):
    sim, server_node, phone = build()
    server = VideoServer(sim, server_node, mode=mode)
    done = []
    session = VideoSession(sim, phone, server, PROFILE, on_complete=done.append)
    session.start()
    sim.run(until=120.0)
    assert session.finished
    assert done == [session]
    m = session.player.metrics
    assert m.completed
    assert m.bytes_received == pytest.approx(PROFILE.size_bytes, rel=0.01)
    assert session.severity() == "good"


def test_youtube_mode_paces_delivery():
    """Apache floods the pipe; YouTube trickles after the initial burst."""
    long_video = VideoProfile("v2", "SD", "360p", 8e5, 90.0)
    rates = {}
    for mode in ("apache", "youtube"):
        sim, server_node, phone = build(rate=50e6)
        server = VideoServer(sim, server_node, mode=mode)
        session = VideoSession(sim, phone, server, long_video)
        session.start()
        sim.run(until=8.0)
        rates[mode] = session.player.metrics.bytes_received
    assert rates["apache"] > rates["youtube"] * 1.5


def test_server_load_slows_first_byte():
    delays = {}
    for load in (0.0, 0.95):
        sim, server_node, phone = build()
        server = VideoServer(sim, server_node, mode="apache")
        server.set_load(load)
        session = VideoSession(sim, phone, server, PROFILE)
        session.start()
        sim.run(until=60.0)
        delays[load] = session.player.metrics.startup_delay_s
    assert delays[0.95] > delays[0.0]


def test_unregistered_client_gets_empty_response():
    sim, server_node, phone = build()
    server = VideoServer(sim, server_node)
    session = VideoSession(sim, phone, server, PROFILE)
    session.start()
    server._pending.clear()  # simulate a missing registration
    sim.run(until=120.0)
    assert session.finished
    assert session.player.metrics.bytes_received == 0


def test_session_mos_abandoned_capped():
    sim, server_node, phone = build(rate=2e4)  # 20 kbit/s: hopeless
    server = VideoServer(sim, server_node)
    session = VideoSession(sim, phone, server, PROFILE)
    session.start()
    sim.run(until=400.0)
    assert session.finished
    assert session.player.metrics.abandoned
    assert session.mos().mos < 2.0
    assert session.severity() == "severe"


def test_server_mode_validation():
    sim, server_node, phone = build()
    with pytest.raises(ValueError):
        VideoServer(sim, server_node, mode="rtsp")


def test_server_hw_view_tracks_load():
    sim, server_node, phone = build()
    server = VideoServer(sim, server_node)
    idle_cpu = server.cpu_utilization()
    server.set_load(0.9)
    assert server.cpu_utilization() > idle_cpu + 0.5
    assert server.free_memory() < 0.7


def test_session_flow_key_identifies_video_flow():
    sim, server_node, phone = build()
    server = VideoServer(sim, server_node)
    session = VideoSession(sim, phone, server, PROFILE)
    session.start()
    key = session.flow_key
    assert key.src == "phone" and key.dst == "server" and key.dport == 80

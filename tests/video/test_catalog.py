"""Unit tests for the synthetic video catalog."""

import random

import pytest

from repro.video.catalog import VideoCatalog, VideoProfile


def test_catalog_size_and_reproducibility():
    a = VideoCatalog(size=50, seed=3)
    b = VideoCatalog(size=50, seed=3)
    assert len(a) == 50
    assert [v.bitrate_bps for v in a] == [v.bitrate_bps for v in b]
    c = VideoCatalog(size=50, seed=4)
    assert [v.bitrate_bps for v in a] != [v.bitrate_bps for v in c]


def test_durations_clamped():
    cat = VideoCatalog(size=200, duration_range=(20.0, 60.0), seed=1)
    assert all(20.0 <= v.duration_s <= 60.0 for v in cat)


def test_hd_fraction_respected():
    cat = VideoCatalog(size=400, hd_fraction=0.25, seed=2)
    hd = sum(1 for v in cat if v.definition == "HD")
    assert 0.15 < hd / 400 < 0.35


def test_sd_hd_bitrates_disjointish():
    cat = VideoCatalog(size=200, seed=5)
    sd_max = max(v.bitrate_bps for v in cat if v.definition == "SD")
    hd_min = min(v.bitrate_bps for v in cat if v.definition == "HD")
    assert sd_max < 1.6e6
    assert hd_min > 1.3e6


def test_size_bytes_consistent():
    profile = VideoProfile("v", "SD", "360p", 8e5, 100.0)
    assert profile.size_bytes == int(8e5 * 100 / 8)
    assert profile.byte_rate == 1e5


def test_get_and_pick():
    cat = VideoCatalog(size=10, seed=6)
    assert cat.get("vid003").video_id == "vid003"
    assert cat.get("nope") is None
    rng = random.Random(0)
    assert cat.pick(rng) in list(cat)
    assert cat.pick_sd(rng).definition == "SD"


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        VideoCatalog(size=0)
    with pytest.raises(ValueError):
        VideoCatalog(duration_range=(0, 10))
    with pytest.raises(ValueError):
        VideoCatalog(duration_range=(50, 10))

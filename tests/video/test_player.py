"""Unit tests for the video player buffer/stall model."""

import pytest

from repro.simnet.engine import Simulator
from repro.video.catalog import VideoProfile
from repro.video.player import PlayerConfig, VideoPlayer

PROFILE = VideoProfile("v", "SD", "360p", 8e5, 20.0)  # 100 kB/s, 20s


def make_player(sim, decode=1.0, config=None):
    return VideoPlayer(
        sim, PROFILE, config=config or PlayerConfig(),
        decode_speed_fn=lambda: decode,
    )


def feed_steadily(sim, player, byte_rate, duration, interval=0.1):
    """Schedule periodic feeds at ``byte_rate`` for ``duration`` seconds."""
    steps = int(duration / interval)
    for i in range(steps):
        sim.schedule(i * interval, player.feed, int(byte_rate * interval))


def test_smooth_playback_no_stalls():
    sim = Simulator()
    player = make_player(sim)
    player.start()
    feed_steadily(sim, player, 3e5, 10.0)  # 3x the media rate
    sim.schedule(10.0, player.notify_download_complete)
    sim.run(until=60.0)
    m = player.metrics
    assert m.started and m.completed and not m.abandoned
    assert m.stall_count == 0
    assert m.startup_delay_s < 2.0
    assert m.content_played_s == pytest.approx(20.0, abs=0.3)


def test_startup_delay_tracks_fill_rate():
    sim = Simulator()
    player = make_player(sim)
    player.start()
    feed_steadily(sim, player, 1e5, 25.0)  # exactly the media rate
    sim.run(until=5.0)
    # 2s of startup buffer at 1x rate => ~2s startup delay
    assert player.metrics.started
    assert player.metrics.startup_delay_s == pytest.approx(2.0, abs=0.3)


def test_underrun_causes_stalls():
    sim = Simulator()
    player = make_player(sim)
    player.start()
    feed_steadily(sim, player, 6e4, 40.0)  # 60% of the media rate
    sim.schedule(40.0, player.notify_download_complete)
    sim.run(until=120.0)
    m = player.metrics
    assert m.stall_count >= 1
    assert m.total_stall_s > 1.0


def test_slow_decoder_stutters_without_network_blame():
    sim = Simulator()
    player = make_player(sim, decode=0.5)
    player.start()
    feed_steadily(sim, player, 5e5, 10.0)
    sim.schedule(10.0, player.notify_download_complete)
    sim.run(until=120.0)
    m = player.metrics
    assert m.stall_count == 0  # buffer never empty
    assert m.stutter_s > 5.0  # but playback crawled
    assert m.qoe_stall_count >= 2
    assert m.frames_skipped > 0


def test_startup_abandonment():
    sim = Simulator()
    player = make_player(sim, config=PlayerConfig(startup_abandon_s=5.0))
    player.start()
    sim.run(until=30.0)  # no bytes ever arrive
    m = player.metrics
    assert m.abandoned and not m.started
    assert m.abandon_reason == "startup-timeout"


def test_stall_abandonment():
    sim = Simulator()
    config = PlayerConfig(stall_abandon_s=4.0)
    player = make_player(sim, config=config)
    player.start()
    feed_steadily(sim, player, 2e5, 4.0)  # then the network dies
    sim.run(until=60.0)
    m = player.metrics
    assert m.started and m.abandoned
    assert m.abandon_reason == "stall-timeout"


def test_fail_marks_abandoned():
    sim = Simulator()
    player = make_player(sim)
    player.start()
    player.fail("handshake-timeout")
    assert player.done
    assert player.metrics.abandoned
    assert player.metrics.abandon_reason == "handshake-timeout"


def test_download_complete_plays_out_tail():
    sim = Simulator()
    player = make_player(sim)
    player.start()
    player.feed(PROFILE.size_bytes)  # whole file at once
    player.notify_download_complete()
    sim.run(until=60.0)
    m = player.metrics
    assert m.completed
    assert m.stall_count == 0
    assert m.watch_time_s == pytest.approx(20.0, abs=1.0)


def test_buffer_accounting():
    sim = Simulator()
    player = make_player(sim)
    player.feed(200_000)
    assert player.buffer_s == pytest.approx(2.0)
    assert player.metrics.bytes_received == 200_000


def test_double_start_rejected():
    sim = Simulator()
    player = make_player(sim)
    player.start()
    with pytest.raises(RuntimeError):
        player.start()

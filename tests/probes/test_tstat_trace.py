"""Trace retention and offline replay for the tstat probe.

``retain_trace=True`` turns on raw-packet capture alongside the streaming
accumulators.  The captured trace must be a faithful stand-in for the live
tap: replaying it into a fresh probe has to reproduce every metric exactly,
and the default (untraced) probe must produce the same metrics as a traced
one -- retention is observation-only.
"""

import pytest

from repro.probes.tstat import TstatProbe
from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.packet import FlowKey, TCP
from repro.simnet.tcp import TcpServer, open_connection


def run_transfer(retain_trace, extra_probe=None, loss=0.01, size=250_000):
    sim = Simulator(seed=6)
    client = Host(sim, "client")
    server = Host(sim, "server")
    wire(sim, client, "eth0", server, "eth0",
         Channel(sim, "up", 20e6, delay=0.02),
         Channel(sim, "down", 20e6, delay=0.02, loss=loss, loss_burst=2.0))
    client.set_default_route(client.interfaces["eth0"])
    server.set_default_route(server.interfaces["eth0"])

    probe = TstatProbe(sim, retain_trace=retain_trace)
    probe.attach(client.interfaces["eth0"])
    if extra_probe is not None:
        extra_probe.attach(client.interfaces["eth0"])

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(size), ep.close())

    TcpServer(sim, server, 80, on_conn)
    cl = open_connection(sim, client, "server", 80)
    cl.on_established = lambda: cl.send(400)
    cl.on_data = lambda n, t: None
    cl.connect()
    sim.run(until=120.0)
    return probe, FlowKey("client", "server", cl.local_port, 80, TCP)


def test_untraced_probe_has_no_trace():
    probe, key = run_transfer(retain_trace=False)
    assert probe.trace is None
    assert probe.metrics_for(key)["s2c_data_bytes"] > 0


def test_retention_does_not_change_metrics():
    """A traced probe on the same tap sees exactly the untraced metrics."""
    sim_probe = TstatProbe(Simulator(seed=6), retain_trace=True)
    untraced, key = run_transfer(retain_trace=False, extra_probe=sim_probe)
    assert untraced.metrics_for(key) == sim_probe.metrics_for(key)
    assert len(sim_probe.trace) > 0


def test_replay_reproduces_live_metrics_exactly():
    """Satellite: trace replay == live observation, metric for metric."""
    live, key = run_transfer(retain_trace=True)
    assert live.trace is not None and len(live.trace) > 0

    offline = TstatProbe(Simulator(seed=0), name="offline")
    live.trace.replay_into(offline)
    assert offline.metrics_for(key) == live.metrics_for(key)
    # Both orientations resolve to the same flow after replay.
    assert offline.flow(key) is offline.flow(key.reversed())


def test_trace_survives_save_load_round_trip(tmp_path):
    live, key = run_transfer(retain_trace=True)
    path = tmp_path / "capture.json"
    live.trace.save(path)

    from repro.simnet.trace import PacketTrace

    loaded = PacketTrace.load(path)
    assert len(loaded) == len(live.trace)
    offline = TstatProbe(Simulator(seed=0), name="offline")
    loaded.replay_into(offline)
    assert offline.metrics_for(key) == live.metrics_for(key)


def test_reset_clears_trace():
    probe, key = run_transfer(retain_trace=True)
    assert len(probe.trace) > 0
    probe.reset()
    assert len(probe.trace) == 0
    assert probe.flow(key) is None
    assert probe.metrics_for(key)["s2c_data_bytes"] == pytest.approx(0.0)

"""Unit tests for hardware, radio and link probes."""

import pytest

from repro.probes.hardware import HardwareProbe
from repro.probes.link import LinkProbe
from repro.probes.radio import RadioProbe
from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.packet import Packet, UDP
from repro.simnet.wireless import WifiMedium


class TestHardwareProbe:
    def test_aggregates_over_window(self):
        sim = Simulator(seed=0)
        values = iter([0.2, 0.4, 0.6, 0.8] * 10)
        probe = HardwareProbe(sim, lambda: next(values), lambda: 0.5, noise_std=0.0)
        probe.start()
        sim.run(until=3.5)  # samples at 0,1,2,3
        m = probe.stop()
        assert m["cpu_avg"] == pytest.approx(0.5, abs=0.01)
        assert m["cpu_min"] == pytest.approx(0.2, abs=0.01)
        assert m["cpu_max"] == pytest.approx(0.8, abs=0.01)
        assert m["mem_free_avg"] == pytest.approx(0.5, abs=0.01)

    def test_values_clamped(self):
        sim = Simulator(seed=0)
        probe = HardwareProbe(sim, lambda: 5.0, lambda: -5.0, noise_std=0.0)
        probe.start()
        sim.run(until=2.0)
        m = probe.stop()
        assert m["cpu_max"] <= 1.0
        assert m["mem_free_min"] >= 0.0

    def test_stop_cancels_sampling(self):
        sim = Simulator(seed=0)
        calls = []
        probe = HardwareProbe(sim, lambda: calls.append(1) or 0.5, lambda: 0.5)
        probe.start()
        sim.run(until=2.0)
        probe.stop()
        n = len(calls)
        sim.run(until=10.0)
        assert len(calls) == n

    def test_double_start_rejected(self):
        sim = Simulator(seed=0)
        probe = HardwareProbe(sim, lambda: 0.5, lambda: 0.5)
        probe.start()
        with pytest.raises(RuntimeError):
            probe.start()

    def test_empty_window_is_zeroes(self):
        sim = Simulator(seed=0)
        probe = HardwareProbe(sim, lambda: 0.5, lambda: 0.5)
        probe.start()
        m = probe.stop()  # stopped before the first scheduled sample ran
        assert m["cpu_std"] == 0.0


class TestRadioProbe:
    def build(self):
        sim = Simulator(seed=1)
        host = Host(sim, "phone")
        ap_host = Host(sim, "ap")
        medium = WifiMedium(sim)
        medium.add_station("ap", ap_host.add_interface("wlan0"), is_ap=True)
        st = medium.add_station("phone", host.add_interface("wlan0"),
                                base_rssi=-60.0)
        return sim, st

    def test_rssi_sampling(self):
        sim, st = self.build()
        probe = RadioProbe(sim, st, noise_std=0.0)
        probe.start()
        sim.run(until=10.0)
        m = probe.stop()
        assert m["rssi_avg"] == pytest.approx(-60.0, abs=3.0)
        assert m["phy_rate_avg"] == 0.0  # no frames sent

    def test_counter_deltas_only(self):
        sim, st = self.build()
        st.retries = 100
        probe = RadioProbe(sim, st)
        probe.start()
        sim.run(until=2.0)
        st.retries = 104
        m = probe.stop()
        assert m["retries"] == 4


class TestLinkProbe:
    def test_rate_and_counters(self):
        sim = Simulator(seed=0)
        a = Host(sim, "a")
        b = Host(sim, "b")
        wire(sim, a, "eth0", b, "eth0",
             Channel(sim, "f", 1e9, queue_limit_bytes=10**9),
             Channel(sim, "b", 1e9, queue_limit_bytes=10**9))
        a.set_default_route(a.interfaces["eth0"])
        b.bind(UDP, 9, lambda p: None)
        probe = LinkProbe(sim, a.interfaces["eth0"])
        probe.start()
        payload = 1000
        n = 100
        for i in range(n):
            sim.schedule(i * 0.01, a.send, Packet(
                src="a", dst="b", sport=1, dport=9, proto=UDP,
                payload_len=payload))
        sim.run(until=1.0)
        m = probe.stop()
        assert m["tx_pkts"] == n
        assert m["tx_bytes"] == n * (payload + 28)
        assert m["tx_rate"] == pytest.approx(n * (payload + 28) * 8, rel=0.05)
        assert m["rx_pkts"] == 0

"""Unit tests for the passive tstat probe.

A real TCP transfer runs over a lossy link with the probe attached at the
client, the midpoint is covered by the testbed integration tests.
The probe must reconstruct retransmissions, RTTs and volumes from the wire
alone -- assertions compare against the endpoints' ground-truth counters.
"""

import pytest

from repro.probes.tstat import FlowStats, TstatProbe, _IntervalSet
from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.packet import FlowKey, Packet, TCP
from repro.simnet.tcp import TcpServer, open_connection


def run_transfer(loss=0.0, size=300_000, seed=1, delay=0.02):
    sim = Simulator(seed=seed)
    client = Host(sim, "client")
    server = Host(sim, "server")
    wire(sim, client, "eth0", server, "eth0",
         Channel(sim, "up", 20e6, delay=delay),
         Channel(sim, "down", 20e6, delay=delay, loss=loss, loss_burst=2.0))
    client.set_default_route(client.interfaces["eth0"])
    server.set_default_route(server.interfaces["eth0"])

    probe = TstatProbe(sim)
    probe.attach(client.interfaces["eth0"])

    eps = {}

    def on_conn(ep):
        eps["server"] = ep
        ep.on_data = lambda n, t: (ep.send(size), ep.close())

    TcpServer(sim, server, 80, on_conn)
    cl = open_connection(sim, client, "server", 80)
    eps["client"] = cl
    cl.on_established = lambda: cl.send(400)
    cl.on_data = lambda n, t: None
    cl.connect()
    sim.run(until=120.0)
    key = FlowKey("client", "server", cl.local_port, 80, TCP)
    return probe, key, eps, sim


def test_flow_oriented_by_syn():
    probe, key, eps, sim = run_transfer()
    flow = probe.flow(key)
    assert flow is not None
    assert flow.key.src == "client"


def test_volume_accounting_clean_link():
    probe, key, eps, sim = run_transfer(size=200_000)
    m = probe.metrics_for(key)
    assert m["s2c_data_bytes"] == pytest.approx(200_000)
    assert m["s2c_unique_bytes"] == pytest.approx(200_000)
    assert m["c2s_data_bytes"] == pytest.approx(400)
    assert m["s2c_retx_pkts"] == 0
    assert m["s2c_ooo_pkts"] == 0


def test_retransmissions_detected_on_lossy_link():
    probe, key, eps, sim = run_transfer(loss=0.03, size=400_000)
    m = probe.metrics_for(key)
    true_retx = eps["server"].stat_retransmits
    assert true_retx > 0
    # The client-side probe sees the retransmissions that survived the
    # lossy downlink; it can never see more than actually happened.
    assert 0 < m["s2c_retx_pkts"] <= true_retx
    assert m["s2c_unique_bytes"] == pytest.approx(400_000)


def test_ooo_detected_on_lossy_link():
    probe, key, eps, sim = run_transfer(loss=0.03, size=400_000)
    m = probe.metrics_for(key)
    # Packets after a hole arrive "early": counted out-of-order or the
    # receiver emits dup-acks; at least one signal must be present.
    assert m["s2c_ooo_pkts"] + m["c2s_dup_acks"] > 0


def test_rtt_estimate_at_client_tap():
    probe, key, eps, sim = run_transfer(delay=0.04)
    m = probe.metrics_for(key)
    # c2s data (the request) -> server ack: full path RTT ~80ms.
    assert m["c2s_rtt_avg"] == pytest.approx(0.08, abs=0.04)
    assert m["c2s_rtt_cnt"] >= 1
    # s2c data -> local ack: near zero (delayed-ack at most).
    assert m["s2c_rtt_avg"] < 0.05


def test_handshake_rtt_measured():
    probe, key, eps, sim = run_transfer(delay=0.04)
    m = probe.metrics_for(key)
    assert m["handshake_rtt"] == pytest.approx(0.08, abs=0.03)


def test_first_payload_delay_positive():
    probe, key, eps, sim = run_transfer()
    m = probe.metrics_for(key)
    assert m["first_payload_delay"] > 0
    assert m["request_delay"] > 0
    assert m["first_payload_delay"] > m["request_delay"]


def test_mss_and_window_observed():
    probe, key, eps, sim = run_transfer()
    m = probe.metrics_for(key)
    assert m["c2s_mss"] == 1460
    assert m["s2c_mss"] == 1460
    assert m["c2s_win_max"] > 0


def test_unknown_flow_returns_zero_vector():
    probe, key, eps, sim = run_transfer()
    missing = FlowKey("x", "y", 1, 2, TCP)
    m = probe.metrics_for(missing)
    assert set(m) == set(probe.metrics_for(key))
    assert all(v == 0.0 for v in m.values())


def test_detach_stops_observation():
    sim = Simulator()
    client = Host(sim, "client")
    iface = client.add_interface("eth0")
    probe = TstatProbe(sim)
    probe.attach(iface)
    probe.detach()
    assert iface.taps == []


def test_non_tcp_ignored():
    probe = TstatProbe(Simulator())
    pkt = Packet(src="a", dst="b", sport=1, dport=2, proto=17, payload_len=10)
    probe._observe(pkt, "rx", 0.0)
    assert probe.flows == {}


class TestIntervalSet:
    def test_new_bytes(self):
        s = _IntervalSet()
        assert s.add(0, 100) == (100, False)
        assert s.add(100, 200) == (100, False)

    def test_full_overlap_is_retx(self):
        s = _IntervalSet()
        s.add(0, 100)
        new, overlapped = s.add(0, 100)
        assert new == 0 and overlapped

    def test_partial_overlap(self):
        s = _IntervalSet()
        s.add(0, 100)
        new, overlapped = s.add(50, 150)
        assert new == 50 and overlapped

    def test_merging(self):
        s = _IntervalSet()
        s.add(0, 100)
        s.add(200, 300)
        s.add(100, 200)
        assert s.spans == [[0, 300]]

    def test_empty_interval(self):
        s = _IntervalSet()
        assert s.add(10, 10) == (0, False)

    def test_max_seen(self):
        s = _IntervalSet()
        assert s.max_seen == 0
        s.add(0, 50)
        assert s.max_seen == 50

"""The `repro.api` facade: one definition for wire schema and library API."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.core.diagnosis import RootCauseAnalyzer
from repro.pipeline.records import record_to_dict
from repro.testbed.testbed import SessionRecord


def test_request_round_trips_wire_records(mini_campaign_records):
    records = mini_campaign_records[:3]
    payload = {"schema": api.REQUEST_SCHEMA,
               "records": [record_to_dict(r) for r in records]}
    request = api.DiagnoseRequest.from_dict(payload)
    assert all(isinstance(r, SessionRecord) for r in request.records)
    assert [r.features for r in request.records] == [r.features for r in records]
    again = api.DiagnoseRequest.from_dict(
        {"schema": api.REQUEST_SCHEMA, "records": request.to_dict()["records"]})
    assert [r.features for r in again.records] == [r.features for r in records]


def test_coerce_session_shapes():
    bare = api.coerce_session({"a": 1, "b": 2.5})
    assert bare == {"a": 1.0, "b": 2.5}
    wrapped = api.coerce_session({"features": {"a": 1}, "meta": {"session_s": 9}})
    assert isinstance(wrapped, api.SessionInput)
    assert wrapped.features == {"a": 1.0}
    assert wrapped.meta == {"session_s": 9}


@pytest.mark.parametrize("bad", [
    3, "x", ["list"],
    {"features": "not-a-dict-means-bare-map-with-string-value"},
    {"features": {"a": 1}, "meta": "nope"},
    {"format": "repro-record-v1"},  # claims the spool format, lacks fields
])
def test_coerce_session_rejects_malformed(bad):
    with pytest.raises(api.ApiError):
        api.coerce_session(bad)


def test_request_schema_enforced():
    with pytest.raises(api.ApiError, match="unsupported request schema"):
        api.DiagnoseRequest.from_dict({"schema": "repro-diagnose-request-v9",
                                       "records": []})
    with pytest.raises(api.ApiError, match="JSON object"):
        api.DiagnoseRequest.from_dict([1, 2])


def test_diagnose_records_matches_diagnose_batch(mini_analyzer,
                                                 mini_campaign_records):
    records = mini_campaign_records[:10]
    response = api.diagnose_records(mini_analyzer, records)
    offline = [r.to_dict() for r in mini_analyzer.diagnose_batch(records)]
    assert api.canonical_json(response.diagnoses) == api.canonical_json(offline)
    payload = response.to_dict()
    assert payload["schema"] == api.RESPONSE_SCHEMA
    assert payload["model"]["schema"] == api.MODEL_INFO_SCHEMA


def test_diagnose_records_accepts_wire_dicts(mini_analyzer,
                                             mini_campaign_records):
    records = mini_campaign_records[:6]
    via_wire = api.diagnose_records(
        mini_analyzer, [record_to_dict(r) for r in records])
    via_objects = api.diagnose_records(mini_analyzer, records)
    assert via_wire.diagnoses == via_objects.diagnoses


def test_diagnose_stream_matches_batch(mini_analyzer, mini_campaign_records):
    records = mini_campaign_records[:9]
    streamed = [r.to_dict()
                for r in api.diagnose_stream(mini_analyzer, records, chunk=4)]
    batched = [r.to_dict() for r in mini_analyzer.diagnose_batch(records)]
    assert streamed == batched


def test_model_info_shape(mini_analyzer):
    info = api.model_info(mini_analyzer, version="v3")
    data = info.to_dict()
    assert data["version"] == "v3"
    assert data["format"] == "repro-analyzer-v2"
    assert set(data["features"]) == {"severity", "location", "exact"}
    assert all(n > 0 for n in data["features"].values())


def test_load_analyzer_sources(tmp_path, mini_analyzer, mini_dataset):
    export = tmp_path / "model.json"
    mini_analyzer.save(export)
    loaded = api.load_analyzer(path=export)
    assert loaded.fitted and tuple(loaded.vps) == tuple(mini_analyzer.vps)

    fitted = api.load_analyzer(dataset=mini_dataset, vps=("mobile",))
    assert fitted.vps == ("mobile",)

    import pickle

    train = tmp_path / "train.pkl"
    with train.open("wb") as fh:
        pickle.dump(mini_dataset, fh)
    from_pickle = api.load_analyzer(train=train, vps=("mobile",))
    assert from_pickle.selected_features() == fitted.selected_features()

    with pytest.raises(ValueError, match="at most one"):
        api.load_analyzer(path=export, train=train)
    junk = tmp_path / "junk.pkl"
    with junk.open("wb") as fh:
        pickle.dump({"not": "a dataset"}, fh)
    with pytest.raises(ValueError, match="repro Dataset"):
        api.load_analyzer(train=junk)


def test_canonical_json_is_canonical():
    assert api.canonical_json({"b": 1, "a": [1.5, "x"]}) == '{"a":[1.5,"x"],"b":1}'
    # floats survive a parse/re-encode round trip exactly
    value = 0.1 + 0.2
    assert json.loads(api.canonical_json({"v": value}))["v"] == value


def test_unfitted_model_info_rejected():
    with pytest.raises(ValueError, match="fit"):
        api.model_info(RootCauseAnalyzer())

"""Micro-batcher concurrency contract.

Everything here runs against a synchronous echo/recording runner, so the
properties under test are pure batching mechanics: request/response
ordering under interleaved clients, max-wait flush driven by a fake
clock, the batch-size cap, per-request error isolation, and result
bit-identity against calling the runner directly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher


class FakeTimer:
    """A cancellable handle the fake clock hands out."""

    def __init__(self, delay, fn):
        self.delay = delay
        self.fn = fn
        self.cancelled = False
        self.fired = False

    def cancel(self):
        self.cancelled = True


class FakeClock:
    """Injected ``schedule``: timers fire only when the test says so."""

    def __init__(self):
        self.timers = []

    def schedule(self, delay, fn):
        timer = FakeTimer(delay, fn)
        self.timers.append(timer)
        return timer

    def fire(self):
        """Fire every armed, uncancelled timer once."""
        for timer in list(self.timers):
            if not timer.cancelled and not timer.fired:
                timer.fired = True
                timer.fn()

    @property
    def armed(self):
        return [t for t in self.timers if not t.cancelled and not t.fired]


class RecordingRunner:
    """Echo runner that logs every batch it is handed."""

    def __init__(self):
        self.batches = []

    def __call__(self, records):
        self.batches.append(list(records))
        for record in records:
            if record == "bad":
                raise ValueError("malformed record")
        return [("scored", record) for record in records]


def run(coro):
    return asyncio.run(coro)


def test_interleaved_clients_get_their_own_results_in_order():
    runner = RecordingRunner()
    clock = FakeClock()
    batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5.0,
                           schedule=clock.schedule)

    async def scenario():
        a = asyncio.ensure_future(batcher.submit(["a1", "a2"]))
        b = asyncio.ensure_future(batcher.submit(["b1"]))
        c = asyncio.ensure_future(batcher.submit(["c1", "c2", "c3"]))
        await asyncio.sleep(0)  # let all three join the window
        clock.fire()
        return await asyncio.gather(a, b, c)

    results_a, results_b, results_c = run(scenario())
    assert results_a == [("scored", "a1"), ("scored", "a2")]
    assert results_b == [("scored", "b1")]
    assert results_c == [("scored", "c1"), ("scored", "c2"), ("scored", "c3")]
    # one window -> one coalesced batch, in arrival order
    assert runner.batches == [["a1", "a2", "b1", "c1", "c2", "c3"]]


def test_max_wait_flush_with_fake_clock():
    runner = RecordingRunner()
    clock = FakeClock()
    batcher = MicroBatcher(runner, max_batch=64, max_wait_ms=7.0,
                           schedule=clock.schedule)

    async def scenario():
        future = batcher.submit(["x"])
        await asyncio.sleep(0)
        # under the cap: nothing runs until the window timer fires
        assert runner.batches == []
        assert len(clock.armed) == 1
        assert clock.armed[0].delay == pytest.approx(0.007)
        clock.fire()
        assert runner.batches == [["x"]]
        return await future

    assert run(scenario()) == [("scored", "x")]
    assert batcher.stats["flush_timer"] == 1


def test_full_window_flushes_without_waiting():
    runner = RecordingRunner()
    clock = FakeClock()
    batcher = MicroBatcher(runner, max_batch=3, max_wait_ms=1000.0,
                           schedule=clock.schedule)

    async def scenario():
        a = asyncio.ensure_future(batcher.submit(["a1", "a2"]))
        await asyncio.sleep(0)
        assert runner.batches == []  # still below the cap
        b = asyncio.ensure_future(batcher.submit(["b1"]))
        await asyncio.sleep(0)
        return await asyncio.gather(a, b)

    run(scenario())
    assert runner.batches == [["a1", "a2", "b1"]]  # flushed on fill, no timer
    assert batcher.stats["flush_full"] == 1
    assert batcher.stats["flush_timer"] == 0
    # the armed timer was cancelled by the full flush
    assert all(t.cancelled for t in clock.timers)


def test_batch_size_cap_never_exceeded():
    runner = RecordingRunner()
    clock = FakeClock()
    batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=5.0,
                           schedule=clock.schedule)

    async def scenario():
        futures = [asyncio.ensure_future(batcher.submit([f"r{i}a", f"r{i}b", f"r{i}c"]))
                   for i in range(3)]
        await asyncio.sleep(0)
        clock.fire()
        return await asyncio.gather(*futures)

    results = run(scenario())
    assert all(len(batch) <= 4 for batch in runner.batches)
    assert sum(len(batch) for batch in runner.batches) == 9
    for i, per_request in enumerate(results):
        assert per_request == [("scored", f"r{i}a"), ("scored", f"r{i}b"),
                               ("scored", f"r{i}c")]


def test_oversized_single_request_is_chunked_under_the_cap():
    runner = RecordingRunner()
    batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=0.5)

    async def scenario():
        return await batcher.submit([f"r{i}" for i in range(10)])

    results = run(scenario())
    assert [len(batch) for batch in runner.batches] == [4, 4, 2]
    assert results == [("scored", f"r{i}") for i in range(10)]


def test_error_isolation_one_bad_request_only():
    runner = RecordingRunner()
    clock = FakeClock()
    batcher = MicroBatcher(runner, max_batch=64, max_wait_ms=5.0,
                           schedule=clock.schedule)

    async def scenario():
        good = asyncio.ensure_future(batcher.submit(["g1", "g2"]))
        bad = asyncio.ensure_future(batcher.submit(["bad"]))
        also_good = asyncio.ensure_future(batcher.submit(["g3"]))
        await asyncio.sleep(0)
        clock.fire()
        results = await asyncio.gather(good, bad, also_good,
                                       return_exceptions=True)
        return results

    good, bad, also_good = run(scenario())
    assert good == [("scored", "g1"), ("scored", "g2")]
    assert isinstance(bad, ValueError)
    assert also_good == [("scored", "g3")]
    assert batcher.stats["request_errors"] == 1


def test_batched_results_identical_to_direct_runner_calls():
    """Batching is routing only: any grouping yields the runner's answers."""
    requests = [[f"q{i}-{j}" for j in range(i % 4 + 1)] for i in range(12)]
    direct = [[("scored", r) for r in request] for request in requests]

    for max_batch in (1, 3, 64):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=max_batch, max_wait_ms=0.2)

        async def scenario():
            futures = [asyncio.ensure_future(batcher.submit(request))
                       for request in requests]
            return await asyncio.gather(*futures)

        assert run(scenario()) == direct


def test_drain_flush_resolves_everything():
    runner = RecordingRunner()
    clock = FakeClock()
    batcher = MicroBatcher(runner, max_batch=64, max_wait_ms=60_000.0,
                           schedule=clock.schedule)

    async def scenario():
        future = asyncio.ensure_future(batcher.submit(["x"]))
        await asyncio.sleep(0)
        batcher.flush("drain")
        return await future

    assert run(scenario()) == [("scored", "x")]
    assert batcher.stats["flush_drain"] == 1
    assert batcher.pending_records == 0


def test_knob_validation():
    with pytest.raises(ValueError):
        MicroBatcher(lambda r: r, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(lambda r: r, max_wait_ms=-1.0)

"""Serving-layer fixtures: a fitted analyzer and an in-process server.

The HTTP tests run :class:`DiagnosisServer` on a real socket inside a
background thread (its own event loop), and talk to it with plain
``http.client`` from the test thread — the same wire a curl or a probe
would use.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.core.diagnosis import RootCauseAnalyzer
from repro.serve import DiagnosisServer, ModelRegistry, ServeConfig


@pytest.fixture(scope="session")
def mini_analyzer(mini_dataset) -> RootCauseAnalyzer:
    """One fitted all-VP analyzer shared by the serving tests."""
    return RootCauseAnalyzer().fit(mini_dataset)


class ServeHandle:
    """A live server on an ephemeral port, driven from the test thread."""

    def __init__(self, registry: ModelRegistry, config: ServeConfig = None):
        self.registry = registry
        self.config = config or ServeConfig(port=0, max_wait_ms=1.0)
        self.port = None
        self.server = None
        self._loop = None
        self._stop = None
        self._thread = None
        self._started = threading.Event()

    def start(self) -> "ServeHandle":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()), daemon=True
        )
        self._thread.start()
        assert self._started.wait(20), "server failed to start"
        return self

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = DiagnosisServer(self.registry, self.config)
        await self.server.start()
        self.port = self.server.port
        self._stop = asyncio.Event()
        self._started.set()
        await self._stop.wait()
        await self.server.drain()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(20)

    def request(self, method: str, path: str, payload=None):
        """One HTTP request; returns ``(status, parsed_json_body)``."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body)
            response = conn.getresponse()
            data = response.read()
            return response.status, json.loads(data) if data else None
        finally:
            conn.close()


@pytest.fixture()
def server(mini_analyzer):
    registry = ModelRegistry()
    registry.register("v1", mini_analyzer)
    handle = ServeHandle(registry).start()
    yield handle
    handle.stop()

"""Model registry: versioned loading, activation, hot swap."""

from __future__ import annotations

import pytest

from repro.api import ModelInfo
from repro.core.diagnosis import RootCauseAnalyzer
from repro.serve import ModelRegistry, RegistryError


def test_first_registration_activates(mini_analyzer):
    registry = ModelRegistry()
    assert registry.active_version is None
    registry.register("v1", mini_analyzer)
    assert registry.active_version == "v1"
    assert registry.get() is mini_analyzer


def test_later_registration_needs_explicit_activation(mini_analyzer):
    registry = ModelRegistry()
    registry.register("v1", mini_analyzer)
    registry.register("v2", mini_analyzer)
    assert registry.active_version == "v1"
    previous = registry.activate("v2")
    assert previous == "v1"
    assert registry.active_version == "v2"
    registry.register("v3", mini_analyzer, activate=True)
    assert registry.active_version == "v3"


def test_unfitted_analyzer_rejected():
    registry = ModelRegistry()
    with pytest.raises(ValueError, match="fitted"):
        registry.register("v1", RootCauseAnalyzer())


def test_unknown_version_errors(mini_analyzer):
    registry = ModelRegistry()
    with pytest.raises(RegistryError, match="no model registered"):
        registry.get()
    registry.register("v1", mini_analyzer)
    with pytest.raises(RegistryError, match="unknown model version"):
        registry.activate("v9")
    with pytest.raises(RegistryError, match="unknown model version"):
        registry.get("v9")


def test_load_path_uses_file_stem(tmp_path, mini_analyzer):
    export = tmp_path / "v7.json"
    mini_analyzer.save(export)
    registry = ModelRegistry()
    assert registry.load_path(export) == "v7"
    assert registry.versions() == ["v7"]
    info = registry.info()
    assert isinstance(info, ModelInfo)
    assert info.version == "v7"
    assert info.vps == tuple(mini_analyzer.vps)


def test_load_dir_activates_greatest_version(tmp_path, mini_analyzer):
    for name in ("v01", "v02", "v10"):
        mini_analyzer.save(tmp_path / f"{name}.json")
    registry = ModelRegistry()
    assert registry.load_dir(tmp_path) == ["v01", "v02", "v10"]
    assert registry.active_version == "v10"


def test_load_dir_empty_errors(tmp_path):
    with pytest.raises(RegistryError, match="no analyzer exports"):
        ModelRegistry().load_dir(tmp_path)


def test_loaded_model_diagnoses_identically(tmp_path, mini_analyzer,
                                            mini_campaign_records):
    """A registry round-trip through JSON export changes no diagnosis."""
    export = tmp_path / "v1.json"
    mini_analyzer.save(export)
    registry = ModelRegistry()
    registry.load_path(export)
    records = mini_campaign_records[:8]
    reloaded = registry.get().diagnose_batch(records)
    original = mini_analyzer.diagnose_batch(records)
    assert [r.to_dict() for r in reloaded] == [r.to_dict() for r in original]

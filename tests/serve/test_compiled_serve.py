"""End-to-end pin: served responses are identical across prediction engines.

``REPRO_ML_PREDICT`` is read per call, so a running server switches
engines between requests without a restart.  The same request posted
under ``compiled`` and ``object`` must come back byte-identical as
canonical JSON — the serving layer puts nothing nondeterministic in the
body (latency goes to telemetry only), so any divergence is a real
compiled/object mismatch.
"""

from __future__ import annotations

import os

from repro.api import REQUEST_SCHEMA, canonical_json
from repro.ml.compiled import PREDICT_MODE_ENV
from repro.pipeline.records import record_to_dict


def _post_under_mode(server, payload, mode):
    before = os.environ.get(PREDICT_MODE_ENV)
    os.environ[PREDICT_MODE_ENV] = mode
    try:
        return server.request("POST", "/v1/diagnose", payload)
    finally:
        if before is None:
            os.environ.pop(PREDICT_MODE_ENV, None)
        else:
            os.environ[PREDICT_MODE_ENV] = before


def test_served_bodies_byte_identical_across_predict_modes(
        server, mini_campaign_records):
    records = mini_campaign_records[:16]
    payload = {"schema": REQUEST_SCHEMA,
               "records": [record_to_dict(r) for r in records]}
    status_c, body_c = _post_under_mode(server, payload, "compiled")
    status_o, body_o = _post_under_mode(server, payload, "object")
    assert status_c == status_o == 200
    assert canonical_json(body_c) == canonical_json(body_o)
    assert canonical_json(body_c["diagnoses"]) == canonical_json(
        body_o["diagnoses"])


def test_mixed_record_shapes_identical_across_predict_modes(
        server, mini_campaign_records):
    # Bare feature dicts ride the same batch as wrapped records; the
    # compiled plan must agree with the object path on both shapes.
    record = mini_campaign_records[0]
    payload = {"schema": REQUEST_SCHEMA,
               "records": [dict(record.features),
                           {"features": dict(record.features),
                            "meta": {"session_s": 12.0}},
                           record_to_dict(mini_campaign_records[1])]}
    _, body_c = _post_under_mode(server, payload, "compiled")
    _, body_o = _post_under_mode(server, payload, "object")
    assert canonical_json(body_c) == canonical_json(body_o)

"""HTTP serving layer: endpoints, wire schema, hot swap, drain.

These tests drive a real :class:`DiagnosisServer` on a loopback socket
(see ``conftest.ServeHandle``) with plain ``http.client`` requests —
including the acceptance pin that served diagnoses are byte-identical,
as canonical JSON, to offline ``diagnose_batch`` on the same records.
"""

from __future__ import annotations

import pytest

from repro.api import REQUEST_SCHEMA, RESPONSE_SCHEMA, canonical_json
from repro.pipeline.records import record_to_dict
from repro.serve import ModelRegistry, ServeConfig
from tests.serve.conftest import ServeHandle


def diagnose_payload(records):
    return {"schema": REQUEST_SCHEMA,
            "records": [record_to_dict(r) for r in records]}


def test_healthz_and_readyz(server):
    status, body = server.request("GET", "/healthz")
    assert status == 200
    assert body == {"draining": False, "status": "ok"}
    status, body = server.request("GET", "/readyz")
    assert status == 200
    assert body["status"] == "ready"
    assert body["model"] == "v1"


def test_served_diagnoses_bit_identical_to_offline_batch(
        server, mini_analyzer, mini_campaign_records):
    records = mini_campaign_records[:12]
    status, body = server.request(
        "POST", "/v1/diagnose", diagnose_payload(records))
    assert status == 200
    assert body["schema"] == RESPONSE_SCHEMA
    assert body["model"]["version"] == "v1"
    offline = [r.to_dict() for r in mini_analyzer.diagnose_batch(records)]
    assert canonical_json(body["diagnoses"]) == canonical_json(offline)


def test_bare_feature_records_accepted(server, mini_campaign_records):
    record = mini_campaign_records[0]
    payload = {"schema": REQUEST_SCHEMA,
               "records": [dict(record.features),
                           {"features": dict(record.features),
                            "meta": {"session_s": 12.0}}]}
    status, body = server.request("POST", "/v1/diagnose", payload)
    assert status == 200
    assert len(body["diagnoses"]) == 2
    for entry in body["diagnoses"]:
        assert entry["severity"] in ("good", "mild", "severe")


def test_empty_request_is_ok(server):
    status, body = server.request(
        "POST", "/v1/diagnose", {"schema": REQUEST_SCHEMA, "records": []})
    assert status == 200
    assert body["diagnoses"] == []


@pytest.mark.parametrize("payload, fragment", [
    ("not json", "not valid JSON"),
    ({"records": []}, "unsupported request schema"),
    ({"schema": REQUEST_SCHEMA, "records": "nope"}, "must be a list"),
    ({"schema": REQUEST_SCHEMA, "records": [3]}, "must be an object"),
    ({"schema": REQUEST_SCHEMA,
      "records": [{"features": {"x": "NaN-ish-string"}}]}, "non-numeric"),
])
def test_malformed_requests_get_400(server, payload, fragment):
    if isinstance(payload, str):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/v1/diagnose", body=payload)
            response = conn.getresponse()
            status, body = response.status, response.read().decode()
        finally:
            conn.close()
    else:
        status, body = server.request("POST", "/v1/diagnose", payload)
        body = canonical_json(body)
    assert status == 400
    assert fragment in body


def test_malformed_record_fails_only_its_request(server, mini_campaign_records):
    """A bad record 400s its own request; a concurrent good one is served."""
    good = diagnose_payload(mini_campaign_records[:2])
    bad = {"schema": REQUEST_SCHEMA, "records": [{"features": {"x": None}}]}
    status_bad, _ = server.request("POST", "/v1/diagnose", bad)
    status_good, body_good = server.request("POST", "/v1/diagnose", good)
    assert status_bad == 400
    assert status_good == 200
    assert len(body_good["diagnoses"]) == 2


def test_unknown_path_and_method(server):
    status, body = server.request("GET", "/nope")
    assert status == 404
    status, body = server.request("POST", "/healthz")
    assert status == 405
    assert "GET" in body["error"]


def test_models_endpoint_and_hot_swap(server, mini_campaign_records):
    status, body = server.request("GET", "/v1/models")
    assert status == 200
    assert body["active"] == "v1"
    assert [m["version"] for m in body["versions"]] == ["v1"]
    assert body["batcher"]["requests"] >= 0

    # hot swap: register v2 directly on the registry, then activate by HTTP
    server.registry.register("v2", server.registry.get("v1"))
    status, body = server.request(
        "POST", "/v1/models/activate", {"version": "v2"})
    assert status == 200
    assert body == {"active": "v2", "previous": "v1"}
    status, body = server.request(
        "POST", "/v1/diagnose", diagnose_payload(mini_campaign_records[:1]))
    assert status == 200
    assert body["model"]["version"] == "v2"

    status, body = server.request(
        "POST", "/v1/models/activate", {"version": "v99"})
    assert status == 404
    status, body = server.request("POST", "/v1/models/activate", {"nope": 1})
    assert status == 400


def test_no_model_means_not_ready():
    handle = ServeHandle(ModelRegistry(), ServeConfig(port=0)).start()
    try:
        status, body = handle.request("GET", "/readyz")
        assert status == 503
        assert body["status"] == "unavailable"
        status, body = handle.request(
            "POST", "/v1/diagnose", {"schema": REQUEST_SCHEMA, "records": []})
        assert status == 503
        assert "no model registered" in body["error"]
        status, _ = handle.request("GET", "/healthz")
        assert status == 200  # alive, just not ready
    finally:
        handle.stop()


def test_graceful_drain_stops_serving(server, mini_campaign_records):
    status, _ = server.request(
        "POST", "/v1/diagnose", diagnose_payload(mini_campaign_records[:1]))
    assert status == 200
    server.stop()  # requests drain, listener closes, loop exits cleanly
    with pytest.raises(OSError):
        server.request("GET", "/healthz")

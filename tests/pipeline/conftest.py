"""Shared fixtures for the sharded-campaign test modules.

The serial reference campaign is simulated exactly once per session;
shard, merge and crash-injection tests all compare their spools against
these bytes.  The config is tiny (6 instances, short videos) but its
seed partition is structurally interesting: with 3 shards, shard 0 owns
*zero* indices, exercising the empty-shard path everywhere.
"""

import pytest

from repro.pipeline.records import record_to_json
from repro.testbed.campaign import CampaignConfig, run_campaign

SHARD_CONFIG = CampaignConfig(
    n_instances=6, seed=77, video_duration_range=(8.0, 12.0)
)


@pytest.fixture(scope="session")
def shard_config():
    return SHARD_CONFIG


@pytest.fixture(scope="session")
def serial_reference(shard_config):
    """The bytes a never-sharded serial campaign spools for SHARD_CONFIG."""
    records = run_campaign(shard_config)
    return b"".join(
        (record_to_json(record) + "\n").encode("utf-8") for record in records
    )

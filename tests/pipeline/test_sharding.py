"""Sharded campaigns: partition, manifests, shard runs, exact merge."""

import dataclasses
import json
import shutil

import pytest

from repro.pipeline.checkpoint import (
    Checkpoint,
    checkpoint_path,
    clear_checkpoint,
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.pipeline.shard import (
    MANIFEST_FORMAT,
    NotShardedError,
    ShardError,
    ShardManifest,
    clear_shard,
    load_manifest,
    load_shard_manifests,
    manifest_path,
    merge_shards,
    plan_shards,
    run_shard,
    save_manifest,
    shard_complete,
    shard_progress,
    shard_resume_position,
    shard_spool_path,
)
from repro.testbed.campaign import CampaignConfig, campaign_seeds, shard_partition

from .test_records import make_record

SHARDS = 3


class TestPartition:
    def test_every_index_in_exactly_one_shard(self):
        seeds = campaign_seeds(7, 50)
        parts = shard_partition(seeds, 4)
        flat = [i for part in parts for i in part]
        assert sorted(flat) == list(range(50))

    def test_indices_ascending_within_shard(self):
        seeds = campaign_seeds(7, 50)
        for part in shard_partition(seeds, 4):
            assert part == sorted(part)

    def test_single_shard_is_identity(self):
        seeds = campaign_seeds(7, 12)
        assert shard_partition(seeds, 1) == [list(range(12))]

    def test_partition_is_by_seed_modulus(self):
        seeds = campaign_seeds(7, 30)
        parts = shard_partition(seeds, 5)
        for shard, part in enumerate(parts):
            assert all(seeds[i] % 5 == shard for i in part)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            shard_partition([1, 2, 3], 0)

    def test_deterministic(self):
        seeds = campaign_seeds(7, 40)
        assert shard_partition(seeds, 6) == shard_partition(list(seeds), 6)


class TestManifest:
    def test_spool_path_naming(self, tmp_path):
        spool = shard_spool_path(tmp_path / "campaign.jsonl", 2, 4)
        assert spool.name == "campaign.shard0002-of-0004.jsonl"
        assert spool.parent == tmp_path

    def test_manifest_path_is_suffixed_sibling(self, tmp_path):
        assert (
            manifest_path(tmp_path / "c.jsonl").name == "c.jsonl.manifest"
        )

    def test_save_load_round_trip(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        manifest = ShardManifest(
            config_key="k1", campaign_seed=9, n_instances=5,
            shards=2, shard=1, indices=(1, 3, 4),
        )
        save_manifest(spool, manifest)
        assert load_manifest(spool) == manifest
        payload = json.loads(manifest_path(spool).read_text())
        assert payload["format"] == MANIFEST_FORMAT

    def test_load_absent_is_none(self, tmp_path):
        assert load_manifest(tmp_path / "c.jsonl") is None

    def test_load_garbage_is_none(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        manifest_path(spool).write_text("{not json")
        assert load_manifest(spool) is None

    def test_load_foreign_format_is_none(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        manifest_path(spool).write_text(json.dumps({"format": "v99"}))
        assert load_manifest(spool) is None

    def test_plan_shards_partitions_instance_space(self):
        config = CampaignConfig(n_instances=20, seed=5)
        manifests = plan_shards(config, 4)
        assert [m.shard for m in manifests] == [0, 1, 2, 3]
        flat = sorted(i for m in manifests for i in m.indices)
        assert flat == list(range(20))
        assert all(m.config_key == config_fingerprint(config) for m in manifests)
        assert all(m.n_instances == 20 and m.shards == 4 for m in manifests)

    def test_plan_shards_zero_rejected(self):
        with pytest.raises(ShardError, match=">= 1"):
            plan_shards(CampaignConfig(n_instances=4, seed=5), 0)


@pytest.fixture(scope="module")
def sharded_dir(tmp_path_factory, shard_config):
    """All SHARDS shards of the reference campaign, run once per module."""
    root = tmp_path_factory.mktemp("sharded")
    base = root / "campaign.jsonl"
    for shard in range(SHARDS):
        run_shard(shard_config, base, SHARDS, shard)
    return root


def _copy(sharded_dir, tmp_path):
    """A private mutable copy of the pre-run shard spools."""
    dest = tmp_path / "work"
    shutil.copytree(sharded_dir, dest)
    return dest / "campaign.jsonl"


class TestRunShardAndMerge:
    def test_merge_is_byte_identical_to_serial(
        self, sharded_dir, tmp_path, shard_config, serial_reference
    ):
        base = _copy(sharded_dir, tmp_path)
        out = tmp_path / "merged.jsonl"
        result = merge_shards(base, SHARDS, out=out)
        assert out.read_bytes() == serial_reference
        assert result.records == shard_config.n_instances
        assert result.shards == SHARDS
        assert result.config_key == config_fingerprint(shard_config)

    def test_merge_defaults_to_base_path(
        self, sharded_dir, tmp_path, serial_reference
    ):
        base = _copy(sharded_dir, tmp_path)
        merge_shards(base, SHARDS)
        assert base.read_bytes() == serial_reference

    def test_empty_shard_still_spools_and_completes(self, sharded_dir):
        # Shard 0 of the reference partition owns zero indices.
        base = sharded_dir / "campaign.jsonl"
        manifest = load_manifest(shard_spool_path(base, 0, SHARDS))
        assert manifest.indices == ()
        assert shard_spool_path(base, 0, SHARDS).stat().st_size == 0
        assert shard_complete(base, SHARDS, 0)

    def test_rerun_finished_shard_noops(
        self, sharded_dir, tmp_path, shard_config
    ):
        base = _copy(sharded_dir, tmp_path)
        spool = shard_spool_path(base, 1, SHARDS)
        before = spool.read_bytes()
        result = run_shard(shard_config, base, SHARDS, 1, resume=True)
        assert result.resumed_at == result.records == len(
            load_manifest(spool).indices
        )
        assert spool.read_bytes() == before

    def test_rerun_without_resume_restarts_identically(
        self, sharded_dir, tmp_path, shard_config
    ):
        base = _copy(sharded_dir, tmp_path)
        spool = shard_spool_path(base, 2, SHARDS)
        before = spool.read_bytes()
        result = run_shard(shard_config, base, SHARDS, 2, resume=False)
        assert result.resumed_at == 0
        assert spool.read_bytes() == before

    def test_shard_out_of_range_rejected(self, tmp_path, shard_config):
        with pytest.raises(ShardError, match=r"in \[0, 3\)"):
            run_shard(shard_config, tmp_path / "c.jsonl", 3, 3)
        with pytest.raises(ShardError, match=">= 1"):
            run_shard(shard_config, tmp_path / "c.jsonl", 0, 0)

    def test_foreign_manifest_refuses(
        self, sharded_dir, tmp_path, shard_config
    ):
        base = _copy(sharded_dir, tmp_path)
        other = dataclasses.replace(shard_config, seed=shard_config.seed + 1)
        with pytest.raises(ShardError, match="different campaign"):
            run_shard(other, base, SHARDS, 1)

    def test_unsharded_spool_refuses_resume(self, tmp_path, shard_config):
        base = tmp_path / "c.jsonl"
        spool = shard_spool_path(base, 1, SHARDS)
        spool.write_text("not a sharded spool\n")
        with pytest.raises(NotShardedError, match="no shard manifest"):
            run_shard(shard_config, base, SHARDS, 1, resume=True)

    def test_unsharded_spool_overwritten_without_resume(
        self, tmp_path, shard_config, sharded_dir
    ):
        base = tmp_path / "c.jsonl"
        spool = shard_spool_path(base, 1, SHARDS)
        spool.write_text("junk\n")
        run_shard(shard_config, base, SHARDS, 1, resume=False)
        reference = shard_spool_path(
            sharded_dir / "campaign.jsonl", 1, SHARDS
        ).read_bytes()
        assert spool.read_bytes() == reference


class TestMergeValidation:
    def test_incomplete_shard_refuses(self, sharded_dir, tmp_path):
        base = _copy(sharded_dir, tmp_path)
        spool = shard_spool_path(base, 2, SHARDS)
        lines = spool.read_bytes().splitlines(keepends=True)
        spool.write_bytes(b"".join(lines[:-1]))
        with pytest.raises(ShardError, match="incomplete shard spool"):
            merge_shards(base, SHARDS)

    def test_missing_shard_refuses(self, sharded_dir, tmp_path):
        base = _copy(sharded_dir, tmp_path)
        clear_shard(base, SHARDS, 1)
        with pytest.raises(NotShardedError, match="no shard manifest"):
            merge_shards(base, SHARDS)

    def test_mixed_configs_refuse(self, sharded_dir, tmp_path):
        base = _copy(sharded_dir, tmp_path)
        spool = shard_spool_path(base, 1, SHARDS)
        forged = dataclasses.replace(
            load_manifest(spool), config_key="0000000000000000"
        )
        save_manifest(spool, forged)
        with pytest.raises(ShardError, match="disagree"):
            merge_shards(base, SHARDS)

    def test_wrong_slot_refuses(self, sharded_dir, tmp_path):
        base = _copy(sharded_dir, tmp_path)
        spool = shard_spool_path(base, 1, SHARDS)
        forged = dataclasses.replace(load_manifest(spool), shard=0)
        save_manifest(spool, forged)
        with pytest.raises(ShardError, match="claims shard"):
            merge_shards(base, SHARDS)

    def _synthetic(self, base, shards, indices_by_shard, n):
        for shard, indices in enumerate(indices_by_shard):
            spool = shard_spool_path(base, shard, shards)
            save_manifest(spool, ShardManifest(
                config_key="k1", campaign_seed=1, n_instances=n,
                shards=shards, shard=shard, indices=tuple(indices),
            ))
            spool.write_bytes(b"".join(b"{}\n" for _ in indices))

    def test_duplicate_index_refuses(self, tmp_path):
        base = tmp_path / "c.jsonl"
        self._synthetic(base, 2, [(0, 1), (1, 2)], 3)
        with pytest.raises(ShardError, match="owned by shards"):
            load_shard_manifests(base, 2)

    def test_torn_partition_refuses(self, tmp_path):
        base = tmp_path / "c.jsonl"
        self._synthetic(base, 2, [(0,), (2,)], 3)
        with pytest.raises(ShardError, match="torn"):
            load_shard_manifests(base, 2)


def _make_shard(tmp_path, n_lines, indices, key="k1", completed=None):
    """A synthetic shard spool: record-shaped lines + sidecars."""
    from repro.pipeline.records import record_to_json

    base = tmp_path / "c.jsonl"
    spool = shard_spool_path(base, 0, 1)
    manifest = ShardManifest(
        config_key=key, campaign_seed=1, n_instances=len(indices),
        shards=1, shard=0, indices=tuple(indices),
    )
    save_manifest(spool, manifest)
    lines = [record_to_json(make_record(mos=2.0 + i)) for i in range(n_lines)]
    spool.write_text("".join(line + "\n" for line in lines))
    if completed is not None:
        save_checkpoint(spool, Checkpoint(config_key=key, completed=completed))
    return spool, manifest


class TestShardResumePosition:
    def test_missing_spool_starts_at_zero(self, tmp_path):
        _, manifest = _make_shard(tmp_path, 0, (0, 1))
        missing = tmp_path / "nowhere.jsonl"
        assert shard_resume_position(missing, manifest) == 0

    def test_checkpoint_defers_to_resume_position(self, tmp_path):
        spool, manifest = _make_shard(tmp_path, 3, (0, 1, 2), completed=2)
        assert shard_resume_position(spool, manifest) == 2
        # the un-checkpointed third line was truncated away
        assert len(spool.read_bytes().splitlines()) == 2

    def test_finished_shard_without_sidecar_resumes_at_end(self, tmp_path):
        spool, manifest = _make_shard(tmp_path, 3, (0, 1, 2), completed=3)
        clear_checkpoint(spool)
        assert shard_resume_position(spool, manifest) == 3

    def test_crash_before_first_checkpoint_restarts(self, tmp_path):
        spool, manifest = _make_shard(tmp_path, 2, (0, 1, 2))
        assert load_checkpoint(spool) is None
        assert shard_resume_position(spool, manifest) == 0
        assert not spool.exists()

    def test_overfull_spool_refuses(self, tmp_path):
        spool, manifest = _make_shard(tmp_path, 3, (0, 1))
        with pytest.raises(ShardError, match="foreign spool"):
            shard_resume_position(spool, manifest)


class TestProgressProbes:
    def test_progress_of_nothing_is_zero(self, tmp_path):
        assert shard_progress(tmp_path / "c.jsonl", 1, 0) == 0

    def test_progress_reads_checkpoint(self, tmp_path):
        spool, _ = _make_shard(tmp_path, 2, (0, 1, 2), completed=2)
        assert shard_progress(tmp_path / "c.jsonl", 1, 0) == 2

    def test_finished_shard_reports_full_count_without_sidecar(
        self, tmp_path
    ):
        spool, _ = _make_shard(tmp_path, 3, (0, 1, 2), completed=3)
        clear_checkpoint(spool)
        assert shard_progress(tmp_path / "c.jsonl", 1, 0) == 3

    def test_complete_iff_all_lines_present(self, tmp_path):
        spool, _ = _make_shard(tmp_path, 2, (0, 1, 2), completed=2)
        base = tmp_path / "c.jsonl"
        assert not shard_complete(base, 1, 0)
        with spool.open("a") as fh:
            fh.write("{}\n")
        assert shard_complete(base, 1, 0)

    def test_clear_shard_removes_all_sidecars(self, tmp_path):
        spool, _ = _make_shard(tmp_path, 2, (0, 1), completed=2)
        clear_shard(tmp_path / "c.jsonl", 1, 0)
        assert not spool.exists()
        assert not checkpoint_path(spool).exists()
        assert not manifest_path(spool).exists()
        clear_shard(tmp_path / "c.jsonl", 1, 0)  # idempotent

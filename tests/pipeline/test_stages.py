"""Stage contract and assembly-time schema validation."""

import pytest

from repro.pipeline import (
    ANY,
    CollectSink,
    CountSink,
    IterableSource,
    Pipeline,
    SchemaError,
    Sink,
    Source,
    Stage,
    chunked,
    validate_schema,
)


class TestChunked:
    def test_even_split(self):
        assert list(chunked(range(6), 2)) == [[0, 1], [2, 3], [4, 5]]

    def test_ragged_tail(self):
        assert list(chunked(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_empty_stream(self):
        assert list(chunked([], 3)) == []

    def test_chunk_larger_than_stream(self):
        assert list(chunked([1, 2], 10)) == [[1, 2]]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="chunk size"):
            list(chunked([1], 0))

    def test_is_lazy(self):
        def gen():
            yield 1
            raise AssertionError("must not be pulled")  # pragma: no cover

        stream = chunked(gen(), 1)
        assert next(stream) == [1]


class _Upper(Stage):
    name = "upper"
    CONSUMES = (ANY,)
    PRODUCES = (ANY,)

    def process(self, stream):
        for item in stream:
            yield item.upper()


class TestPipelineFlow:
    def test_items_flow_through_stages_and_sinks(self):
        sink = CollectSink()
        out = list(Pipeline(IterableSource(["a", "b"]), _Upper(), sink))
        assert out == ["A", "B"]
        assert sink.result() == ["A", "B"]

    def test_run_returns_last_sink_result(self):
        counter = CountSink()
        result = Pipeline(IterableSource([1, 2, 3]), counter).run()
        assert result == {"count": 3, "severity": {}}

    def test_run_without_sink_returns_count(self):
        assert Pipeline(IterableSource("abc"), _Upper()).run() == 3

    def test_flow_is_lazy(self):
        pulled = []

        def gen():
            for i in range(100):
                pulled.append(i)
                yield i

        stream = iter(Pipeline(IterableSource(gen()), CountSink()))
        next(stream)
        assert len(pulled) <= 2  # one in flight, not the whole stream
        stream.close()


class _CompletionSink(Sink):
    name = "completion-probe"

    def __init__(self):
        self.completed = False
        self.closed = False

    def consume(self, item):
        pass

    def on_complete(self):
        self.completed = True

    def close(self):
        self.closed = True


class TestSinkLifecycle:
    def test_on_complete_fires_on_exhaustion(self):
        sink = _CompletionSink()
        Pipeline(IterableSource([1, 2]), sink).run()
        assert sink.completed and sink.closed

    def test_on_complete_skipped_when_interrupted(self):
        sink = _CompletionSink()
        stream = iter(Pipeline(IterableSource([1, 2, 3]), sink))
        next(stream)
        stream.close()
        assert sink.closed
        assert not sink.completed  # interruption must be distinguishable

    def test_close_runs_even_when_stream_raises(self):
        def boom():
            yield 1
            raise RuntimeError("mid-stream failure")

        sink = _CompletionSink()
        with pytest.raises(RuntimeError):
            list(Pipeline(IterableSource(boom()), sink))
        assert sink.closed
        assert not sink.completed


class _NeedsFoo(Stage):
    name = "needs-foo"
    CONSUMES = ("foo",)
    PRODUCES = ("bar",)

    def process(self, stream):  # pragma: no cover - schema tests never run it
        return stream


class _MakesFoo(Source):
    name = "makes-foo"
    CONSUMES = ()
    PRODUCES = ("foo",)

    def items(self):  # pragma: no cover
        return iter(())


class TestSchemaValidation:
    def test_satisfied_chain_passes(self):
        validate_schema([_MakesFoo(), _NeedsFoo()])

    def test_missing_field_raises(self):
        with pytest.raises(SchemaError, match="consumes \\['foo'\\]"):
            Pipeline(_MakesFoo(), _NeedsFoo(), _NeedsFoo())

    def test_first_stage_must_be_source(self):
        with pytest.raises(SchemaError, match="must be a Source"):
            Pipeline(_NeedsFoo())

    def test_source_mid_chain_rejected(self):
        with pytest.raises(SchemaError, match="can only start"):
            Pipeline(_MakesFoo(), _MakesFoo())

    def test_unknown_source_suspends_checking(self):
        # IterableSource cannot know its item shape, so downstream
        # CONSUMES are taken on faith rather than rejected.
        validate_schema([IterableSource([]), _NeedsFoo()])

    def test_concrete_produces_reestablishes_checking(self):
        with pytest.raises(SchemaError, match="needs-foo"):
            validate_schema([IterableSource([]), _NeedsFoo(), _NeedsFoo()])

    def test_pass_through_preserves_schema(self):
        validate_schema([_MakesFoo(), CollectSink(), _NeedsFoo()])

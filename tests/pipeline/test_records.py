"""Spool serialization: JSON round trips must be exact."""

import pytest

from repro.pipeline.records import (
    RECORD_FORMAT,
    record_from_dict,
    record_from_json,
    record_to_dict,
    record_to_json,
)
from repro.testbed.testbed import SessionRecord


def make_record(**overrides):
    base = dict(
        features={"mobile.rssi_mean": -67.25, "router.retr_rate": 0.1 + 0.2},
        app_metrics={"rebuf_ratio": 1e-17, "join_time_s": 2.5},
        mos=3.4375,
        severity="mild",
        fault_name="low_rssi",
        fault_severity="mild",
        fault_location="mobile",
        fault_intensity={"rssi_floor": -88.0},
        meta={"instance_index": 7, "session_s": 12.5, "server_mode": "apache"},
    )
    base.update(overrides)
    return SessionRecord(**base)


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        record = make_record()
        clone = record_from_dict(record_to_dict(record))
        assert clone == record

    def test_json_round_trip_is_exact(self):
        # The floats are deliberately repr-unfriendly: 0.1 + 0.2 and 1e-17
        # only survive if serialization goes through full-precision repr.
        record = make_record()
        clone = record_from_json(record_to_json(record))
        assert clone == record
        assert clone.features["router.retr_rate"] == 0.1 + 0.2
        assert clone.app_metrics["rebuf_ratio"] == 1e-17

    def test_meta_scalars_preserve_types(self):
        clone = record_from_json(record_to_json(make_record()))
        assert clone.meta["instance_index"] == 7
        assert isinstance(clone.meta["instance_index"], int)
        assert clone.meta["server_mode"] == "apache"

    def test_line_has_no_newline(self):
        assert "\n" not in record_to_json(make_record())


class TestFormatTag:
    def test_payload_carries_format(self):
        assert record_to_dict(make_record())["format"] == RECORD_FORMAT

    def test_foreign_payload_rejected(self):
        with pytest.raises(ValueError, match="session-record"):
            record_from_dict({"features": {}})

    def test_wrong_format_rejected(self):
        payload = record_to_dict(make_record())
        payload["format"] = "someone-elses-v9"
        with pytest.raises(ValueError, match="session-record"):
            record_from_dict(payload)

"""Streaming-vs-batch equivalence: the pipeline must be invisible in the data.

The whole contract of the streaming refactor is that chunking, worker
fan-out, spooling, and checkpoint/resume change peak memory and wall
clock, never a single bit of any record, dataset, or diagnosis.  These
tests pin that down on a seeded mini-campaign.
"""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.diagnosis import RootCauseAnalyzer
from repro.pipeline import (
    CampaignSource,
    CollectSink,
    DatasetSink,
    DiagnoseStage,
    InstanceStage,
    IterableSource,
    JsonlSink,
    JsonlSource,
    Pipeline,
    config_fingerprint,
    load_checkpoint,
    resume_position,
)
from repro.testbed.campaign import CampaignConfig, run_campaign


def tiny_config():
    return CampaignConfig(n_instances=4, seed=77,
                          video_duration_range=(10.0, 14.0))


def record_tuple(record):
    return (record.features, record.app_metrics, record.mos, record.severity,
            record.fault_name, record.fault_severity, record.fault_location,
            record.fault_intensity, record.meta)


@pytest.fixture(scope="module")
def batch_records():
    """The batch-path ground truth for the tiny campaign."""
    return run_campaign(tiny_config())


def assert_datasets_identical(a: Dataset, b: Dataset):
    assert a.feature_names == b.feature_names
    assert np.array_equal(a.to_matrix()[0], b.to_matrix()[0])
    assert [i.labels for i in a.instances] == [i.labels for i in b.instances]
    assert [i.meta for i in a.instances] == [i.meta for i in b.instances]
    assert [i.mos for i in a.instances] == [i.mos for i in b.instances]


class TestRecordEquivalence:
    def test_serial_stream_equals_batch(self, batch_records):
        streamed = list(CampaignSource(tiny_config()).items())
        assert ([record_tuple(r) for r in streamed]
                == [record_tuple(r) for r in batch_records])

    def test_parallel_stream_equals_batch(self, batch_records):
        streamed = list(CampaignSource(tiny_config(), workers=4).items())
        assert ([record_tuple(r) for r in streamed]
                == [record_tuple(r) for r in batch_records])

    def test_spool_round_trip_is_bit_identical(self, batch_records, tmp_path):
        spool = tmp_path / "campaign.jsonl"
        Pipeline(IterableSource(batch_records), JsonlSink(spool)).run()
        replayed = list(JsonlSource(spool).items())
        assert ([record_tuple(r) for r in replayed]
                == [record_tuple(r) for r in batch_records])


class TestDatasetEquivalence:
    def test_dataset_sink_equals_from_records(self, mini_campaign_records):
        streamed = Pipeline(
            IterableSource(mini_campaign_records), DatasetSink()
        ).run()
        assert_datasets_identical(
            streamed, Dataset.from_records(mini_campaign_records)
        )

    def test_instance_stage_feeds_dataset_sink(self, mini_campaign_records):
        streamed = Pipeline(
            IterableSource(mini_campaign_records), InstanceStage(), DatasetSink()
        ).run()
        assert_datasets_identical(
            streamed, Dataset.from_records(mini_campaign_records)
        )


class TestDiagnosisEquivalence:
    @pytest.mark.parametrize("chunk", [1, 5, 64])
    def test_chunked_stream_equals_batch(self, mini_dataset,
                                         mini_campaign_records, chunk):
        analyzer = RootCauseAnalyzer(vps=("mobile", "router")).fit(mini_dataset)
        batch = analyzer.diagnose_batch(mini_campaign_records)
        sink = CollectSink()
        Pipeline(
            IterableSource(mini_campaign_records),
            DiagnoseStage(analyzer, chunk=chunk),
            sink,
        ).run()
        streamed = [item.report for item in sink.result()]
        assert [r.to_dict() for r in streamed] == [r.to_dict() for r in batch]

    def test_diagnose_stream_method_equals_batch(self, mini_dataset,
                                                 mini_campaign_records):
        analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(mini_dataset)
        batch = analyzer.diagnose_batch(mini_campaign_records)
        streamed = list(analyzer.diagnose_stream(iter(mini_campaign_records),
                                                 chunk=7))
        assert [r.to_dict() for r in streamed] == [r.to_dict() for r in batch]


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_bit_identical(self, batch_records,
                                                        tmp_path):
        config = tiny_config()
        key = config_fingerprint(config)
        spool = tmp_path / "campaign.jsonl"

        # Simulate a crash: stop the flow after 2 of 4 instances.
        first = iter(Pipeline(
            CampaignSource(config),
            JsonlSink(spool, config_key=key),
        ))
        next(first)
        next(first)
        first.close()
        assert load_checkpoint(spool) is not None  # marker survives the crash

        start = resume_position(spool, key)
        assert start == 2
        Pipeline(
            CampaignSource(config, start=start),
            JsonlSink(spool, config_key=key, start=start),
        ).run()

        replayed = list(JsonlSource(spool).items())
        assert ([record_tuple(r) for r in replayed]
                == [record_tuple(r) for r in batch_records])
        # A cleanly finished spool needs no resume marker.
        assert load_checkpoint(spool) is None

    def test_completed_spool_resumes_to_end(self, batch_records, tmp_path):
        config = tiny_config()
        key = config_fingerprint(config)
        spool = tmp_path / "campaign.jsonl"
        sink = JsonlSink(spool, config_key=key, keep_checkpoint=True)
        Pipeline(IterableSource(batch_records), sink).run()
        assert resume_position(spool, key) == len(batch_records)

"""Property tests for shard partitioning, merge order, and resume.

Hypothesis drives arbitrary shard counts, campaign sizes and kill
schedules through the *bookkeeping* layer — no simulation.  The merge
and resume machinery is content-agnostic (raw byte lines + manifests),
so synthetic spools pin the same invariants the real campaign relies
on, thousands of cases per second:

- every index lands in exactly one shard, ascending within its shard;
- the partition is a pure function of ``(seed, n, shards)``;
- a k-way merge of arbitrary shard spools reconstructs serial byte
  order exactly;
- resuming after an arbitrary sequence of cuts (crashes) at arbitrary
  checkpoints converges to the same bytes as a never-crashed run.
"""

import json
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.checkpoint import Checkpoint, save_checkpoint
from repro.pipeline.shard import (
    ShardManifest,
    merge_shards,
    save_manifest,
    shard_resume_position,
    shard_spool_path,
)
from repro.testbed.campaign import campaign_seeds, shard_partition

CONFIG_KEY = "feedbeeffeedbeef"


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(0, 200),
    shards=st.integers(1, 12),
)
def test_partition_covers_every_index_exactly_once(seed, n, shards):
    seeds = campaign_seeds(seed, n)
    parts = shard_partition(seeds, shards)
    assert len(parts) == shards
    flat = [i for part in parts for i in part]
    assert sorted(flat) == list(range(n))


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(0, 200),
    shards=st.integers(1, 12),
)
def test_partition_ascending_and_seed_keyed(seed, n, shards):
    seeds = campaign_seeds(seed, n)
    for shard, part in enumerate(shard_partition(seeds, shards)):
        assert part == sorted(part)
        assert all(seeds[i] % shards == shard for i in part)


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(0, 200),
    shards=st.integers(1, 12),
)
def test_partition_stable_across_calls(seed, n, shards):
    seeds = campaign_seeds(seed, n)
    assert shard_partition(seeds, shards) == shard_partition(seeds, shards)


def _lines(n, seed):
    """Distinct, record-shaped byte lines for a synthetic campaign."""
    return [
        (json.dumps({"index": i, "seed": seed, "pad": i * 7}) + "\n").encode()
        for i in range(n)
    ]


def _write_shards(base, shards, seed, lines):
    """Write every shard's spool + manifest for a synthetic campaign."""
    n = len(lines)
    seeds = campaign_seeds(seed, n)
    parts = shard_partition(seeds, shards)
    manifests = []
    for shard, indices in enumerate(parts):
        spool = shard_spool_path(base, shard, shards)
        manifest = ShardManifest(
            config_key=CONFIG_KEY, campaign_seed=seed, n_instances=n,
            shards=shards, shard=shard, indices=tuple(indices),
        )
        save_manifest(spool, manifest)
        spool.write_bytes(b"".join(lines[i] for i in indices))
        manifests.append(manifest)
    return manifests


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(0, 80),
    shards=st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_merge_reconstructs_serial_byte_order(seed, n, shards):
    lines = _lines(n, seed)
    with tempfile.TemporaryDirectory() as td:
        base = Path(td) / "c.jsonl"
        _write_shards(base, shards, seed, lines)
        out = Path(td) / "merged.jsonl"
        result = merge_shards(base, shards, out=out)
        assert out.read_bytes() == b"".join(lines)
        assert result.records == n
        assert result.config_key == CONFIG_KEY


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 60),
    shards=st.integers(1, 6),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_resume_after_arbitrary_kill_schedule(seed, n, shards, data):
    """Crash a shard at arbitrary checkpoints; resume converges exactly.

    Models what a SIGKILL leaves on disk: ``c`` durable lines, a sidecar
    at ``c``, and possibly a torn trailing write.  However many times a
    shard is cut, writing ``lines[resume:]`` after each resume ends with
    every spool byte-identical to an uninterrupted run, and the merge
    equal to the serial reference.
    """
    lines = _lines(n, seed)
    with tempfile.TemporaryDirectory() as td:
        base = Path(td) / "c.jsonl"
        manifests = _write_shards(base, shards, seed, lines)
        victim = data.draw(st.integers(0, shards - 1), label="victim shard")
        manifest = manifests[victim]
        spool = shard_spool_path(base, victim, shards)
        owned = [lines[i] for i in manifest.indices]

        kills = data.draw(
            st.lists(st.integers(0, len(owned)), max_size=3, unique=True)
            .map(sorted),
            label="kill checkpoints",
        )
        for cut in kills:
            # the crash: only `cut` records checkpointed, maybe a torn tail
            spool.write_bytes(b"".join(owned[:cut]))
            save_checkpoint(
                spool, Checkpoint(config_key=CONFIG_KEY, completed=cut)
            )
            if cut < len(owned) and data.draw(
                st.booleans(), label="torn tail"
            ):
                with spool.open("ab") as fh:
                    fh.write(owned[cut][: max(1, len(owned[cut]) // 2)])
            # the retry: resume tells us where, we replay the remainder
            resumed = shard_resume_position(spool, manifest)
            assert resumed == cut
            with spool.open("ab") as fh:
                fh.write(b"".join(owned[resumed:]))
            save_checkpoint(
                spool,
                Checkpoint(config_key=CONFIG_KEY, completed=len(owned)),
            )
            assert spool.read_bytes() == b"".join(owned)

        out = Path(td) / "merged.jsonl"
        merge_shards(base, shards, out=out)
        assert out.read_bytes() == b"".join(lines)


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 60),
    shards=st.integers(1, 6),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_crash_before_first_checkpoint_restarts_cleanly(
    seed, n, shards, data
):
    lines = _lines(n, seed)
    with tempfile.TemporaryDirectory() as td:
        base = Path(td) / "c.jsonl"
        manifests = _write_shards(base, shards, seed, lines)
        victim = data.draw(st.integers(0, shards - 1), label="victim shard")
        manifest = manifests[victim]
        spool = shard_spool_path(base, victim, shards)
        owned = [lines[i] for i in manifest.indices]
        if not owned:
            return  # an empty shard has no pre-checkpoint window
        # torn first write, no sidecar ever made it to disk
        spool.write_bytes(owned[0][: len(owned[0]) // 2])
        assert shard_resume_position(spool, manifest) == 0
        assert not spool.exists()

"""Checkpoint sidecar bookkeeping: fingerprints, reconcile, truncation."""

import json

import pytest

from repro.pipeline.checkpoint import (
    CHECKPOINT_FORMAT,
    Checkpoint,
    checkpoint_path,
    clear_checkpoint,
    config_fingerprint,
    load_checkpoint,
    resume_position,
    save_checkpoint,
)
from repro.pipeline.records import record_to_json
from repro.testbed.campaign import CampaignConfig
from repro.testbed.realworld import RealWorldConfig

from .test_records import make_record


def write_spool(path, n, completed=None, key="k1"):
    lines = [record_to_json(make_record(mos=3.0 + i)) for i in range(n)]
    path.write_text("".join(line + "\n" for line in lines))
    save_checkpoint(path, Checkpoint(config_key=key, completed=n if completed is None else completed))
    return lines


class TestFingerprint:
    def test_same_config_same_key(self):
        a = CampaignConfig(n_instances=10, seed=1)
        b = CampaignConfig(n_instances=10, seed=1)
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_seed_changes_key(self):
        a = CampaignConfig(n_instances=10, seed=1)
        b = CampaignConfig(n_instances=10, seed=2)
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_config_type_is_part_of_identity(self):
        a = CampaignConfig(n_instances=10, seed=1)
        b = RealWorldConfig(n_instances=10, seed=1)
        assert config_fingerprint(a) != config_fingerprint(b)


class TestSidecar:
    def test_path_is_suffixed_sibling(self, tmp_path):
        assert checkpoint_path(tmp_path / "c.jsonl").name == "c.jsonl.ckpt"

    def test_save_load_round_trip(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        save_checkpoint(spool, Checkpoint(config_key="abc", completed=4))
        loaded = load_checkpoint(spool)
        assert loaded == Checkpoint(config_key="abc", completed=4)
        payload = json.loads(checkpoint_path(spool).read_text())
        assert payload["format"] == CHECKPOINT_FORMAT

    def test_load_absent_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "c.jsonl") is None

    def test_load_garbage_is_none(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        checkpoint_path(spool).write_text("{not json")
        assert load_checkpoint(spool) is None

    def test_load_foreign_format_is_none(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        checkpoint_path(spool).write_text(json.dumps({"format": "v99", "completed": 1}))
        assert load_checkpoint(spool) is None

    def test_clear_is_idempotent(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        save_checkpoint(spool, Checkpoint(config_key="abc", completed=1))
        clear_checkpoint(spool)
        clear_checkpoint(spool)
        assert not checkpoint_path(spool).exists()


class TestDurability:
    def test_sidecar_write_fsyncs_file_and_directory(
        self, tmp_path, monkeypatch
    ):
        # Regression: rename alone leaves the directory entry volatile —
        # a crash could resurface the old sidecar (or none) while the
        # spool already holds newer records.  Record every fsynced inode
        # (while still really syncing) and require both the sidecar file
        # and its containing directory, in that order.
        import os

        real_fsync = os.fsync
        synced = []

        def recording_fsync(fd):
            synced.append(os.fstat(fd).st_ino)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        spool = tmp_path / "c.jsonl"
        save_checkpoint(spool, Checkpoint(config_key="k1", completed=3))
        file_ino = os.stat(checkpoint_path(spool)).st_ino
        dir_ino = os.stat(tmp_path).st_ino
        assert file_ino in synced
        assert dir_ino in synced
        assert synced.index(file_ino) < synced.index(dir_ino)


class TestResumePosition:
    def test_fresh_spool_starts_at_zero(self, tmp_path):
        assert resume_position(tmp_path / "c.jsonl", "k1") == 0

    def test_resumes_at_checkpoint(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        write_spool(spool, 3)
        assert resume_position(spool, "k1") == 3

    def test_spool_without_sidecar_refuses(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        write_spool(spool, 2)
        clear_checkpoint(spool)
        with pytest.raises(ValueError, match="no usable checkpoint"):
            resume_position(spool, "k1")

    def test_config_mismatch_refuses(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        write_spool(spool, 2, key="other-campaign")
        with pytest.raises(ValueError, match="different campaign config"):
            resume_position(spool, "k1")

    def test_partial_trailing_line_truncated(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        lines = write_spool(spool, 2, completed=2)
        with spool.open("a") as fh:
            fh.write('{"format": "repro-record-v1", "feat')  # crash mid-write
        assert resume_position(spool, "k1") == 2
        assert spool.read_text() == "".join(line + "\n" for line in lines)

    def test_uncheckpointed_full_line_truncated(self, tmp_path):
        # Crash between writing line 3 and bumping the sidecar to 3:
        # the spool must be cut back to the 2 checkpointed lines.
        spool = tmp_path / "c.jsonl"
        lines = write_spool(spool, 3, completed=2)
        assert resume_position(spool, "k1") == 2
        assert spool.read_text() == "".join(line + "\n" for line in lines[:2])

    def test_spool_shorter_than_checkpoint_trusts_spool(self, tmp_path):
        spool = tmp_path / "c.jsonl"
        write_spool(spool, 2, completed=5)
        assert resume_position(spool, "k1") == 2
        # and the sidecar is corrected for the next resume
        assert load_checkpoint(spool).completed == 2

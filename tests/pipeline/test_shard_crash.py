"""Crash-injected orchestration: real subprocesses, real SIGKILLs.

The headline contract of sharded campaigns: however a shard dies —
SIGKILL mid-spool, an exception, a silent hang — the orchestrator
retries it from its last durable checkpoint and the merged spool comes
out **byte-identical** to the serial, never-crashed reference.

Injection runs through the ``REPRO_SHARD_*`` environment hooks
(:mod:`repro.pipeline.shard`): forked shard subprocesses inherit the
test's environment, and each hook fires exactly once because a resumed
shard restarts *above* the trigger's checkpoint count.  Reference
partition for the session config (6 instances, seed 77, 3 shards):
shard 0 owns nothing, shard 1 owns indices (1, 3, 4), shard 2 owns
(0, 2, 5).
"""

import pytest

from repro.cli import main
from repro.pipeline.checkpoint import load_checkpoint
from repro.pipeline.orchestrate import OrchestratorSettings, orchestrate
from repro.pipeline.shard import (
    FAIL_ENV,
    HANG_ENV,
    KILL_ENV,
    ShardError,
    load_manifest,
    merge_shards,
    plan_shards,
    run_shard,
    shard_spool_path,
)

SHARDS = 3

#: fast supervision for tests: tight poll, short backoff.  The
#: heartbeat stays generous — a freshly forked shard needs ~1s of
#: simulation before its first checkpoint exists.
FAST = OrchestratorSettings(
    max_retries=2,
    heartbeat_timeout=30.0,
    backoff_base=0.05,
    backoff_max=0.2,
    poll_interval=0.02,
)


def _merged(tmp_path, shard_config, shards=SHARDS, settings=FAST):
    base = tmp_path / "campaign.jsonl"
    result = orchestrate(shard_config, base, shards, settings=settings)
    out = tmp_path / "merged.jsonl"
    if result.ok:
        merge_shards(base, shards, out=out)
    return result, base, out


def test_clean_orchestration_matches_serial(
    tmp_path, shard_config, serial_reference
):
    result, _, out = _merged(tmp_path, shard_config)
    assert result.ok
    assert result.retries == 0
    assert all(s.attempts == 1 for s in result.statuses)
    assert out.read_bytes() == serial_reference


def test_sigkill_mid_spool_resumes_byte_identical(
    tmp_path, shard_config, serial_reference, monkeypatch
):
    # Shard 2 owns 3 records; SIGKILL it the moment checkpoint hits 1.
    monkeypatch.setenv(KILL_ENV, "2:1")
    result, _, out = _merged(tmp_path, shard_config)
    assert result.ok
    assert result.retries == 1
    assert result.statuses[2].attempts == 2
    assert "exit code -9" in result.statuses[2].reasons[0]
    assert out.read_bytes() == serial_reference


def test_double_kill_same_shard_still_converges(
    tmp_path, shard_config, serial_reference, monkeypatch
):
    # Kill shard 2 on its first attempt (checkpoint 1) and again on its
    # resumed attempt (checkpoint 2): two crashes, three launches.
    monkeypatch.setenv(KILL_ENV, "2:1,2:2")
    result, _, out = _merged(tmp_path, shard_config)
    assert result.ok
    assert result.statuses[2].attempts == 3
    assert result.statuses[2].reasons == ["exit code -9", "exit code -9"]
    assert out.read_bytes() == serial_reference


def test_injected_exception_is_retried(
    tmp_path, shard_config, serial_reference, monkeypatch
):
    monkeypatch.setenv(FAIL_ENV, "1:1")
    result, _, out = _merged(tmp_path, shard_config)
    assert result.ok
    assert result.statuses[1].attempts == 2
    assert "exit code 1" in result.statuses[1].reasons[0]
    assert out.read_bytes() == serial_reference


def test_retry_budget_exhausted_keeps_partial_spools(
    tmp_path, shard_config, serial_reference, monkeypatch
):
    # Shard 1 dies on every one of its 2 allowed launches.
    monkeypatch.setenv(KILL_ENV, "1:1,1:2")
    tight = OrchestratorSettings(
        max_retries=1, heartbeat_timeout=30.0,
        backoff_base=0.05, backoff_max=0.2, poll_interval=0.02,
    )
    base = tmp_path / "campaign.jsonl"
    result = orchestrate(shard_config, base, SHARDS, settings=tight)
    assert not result.ok
    assert result.failed_shards == [1]
    assert result.statuses[1].state == "failed"
    assert result.statuses[0].state == "done"
    assert result.statuses[2].state == "done"
    # Partial progress survives: 2 checkpointed records of the 3 owned.
    spool = shard_spool_path(base, 1, SHARDS)
    assert load_checkpoint(spool).completed == 2
    assert len(spool.read_bytes().splitlines()) >= 2
    with pytest.raises(ShardError, match="incomplete"):
        merge_shards(base, SHARDS)
    # A later orchestration (injection gone) resumes from checkpoint 2
    # and the merge is still exact — partial work is never wasted.
    monkeypatch.delenv(KILL_ENV)
    result = orchestrate(shard_config, base, SHARDS, settings=FAST)
    assert result.ok
    assert result.statuses[1].completed == 3
    out = tmp_path / "merged.jsonl"
    merge_shards(base, SHARDS, out=out)
    assert out.read_bytes() == serial_reference


def test_hung_shard_is_heartbeat_killed_and_retried(
    tmp_path, shard_config, serial_reference, monkeypatch
):
    # Shard 2 checkpoints one record then sleeps forever; only the
    # heartbeat can catch it (the process stays alive).  The timeout
    # must exceed a cold shard's time-to-first-checkpoint (~1s).
    monkeypatch.setenv(HANG_ENV, "2:1")
    hb = OrchestratorSettings(
        max_retries=2, heartbeat_timeout=3.5,
        backoff_base=0.05, backoff_max=0.2, poll_interval=0.05,
    )
    result, _, out = _merged(tmp_path, shard_config, settings=hb)
    assert result.ok
    assert result.statuses[2].reasons == ["heartbeat timeout"]
    assert out.read_bytes() == serial_reference


def test_four_shard_acceptance_scenario(
    tmp_path, shard_config, serial_reference, monkeypatch
):
    # The issue's acceptance criterion: a 4-shard orchestrated campaign
    # with one shard SIGKILLed mid-run converges to the serial bytes.
    manifests = plan_shards(shard_config, 4)
    victim = max(manifests, key=lambda m: len(m.indices)).shard
    monkeypatch.setenv(KILL_ENV, f"{victim}:1")
    result, _, out = _merged(tmp_path, shard_config, shards=4)
    assert result.ok
    assert result.statuses[victim].attempts == 2
    assert out.read_bytes() == serial_reference


def test_in_process_crash_then_resume(
    tmp_path, shard_config, serial_reference, monkeypatch
):
    # The same resume contract without the orchestrator: an injected
    # exception inside run_shard, then resume=True finishes the spool.
    monkeypatch.setenv(FAIL_ENV, "1:1")
    base = tmp_path / "campaign.jsonl"
    with pytest.raises(RuntimeError, match="injected failure"):
        run_shard(shard_config, base, SHARDS, 1)
    monkeypatch.delenv(FAIL_ENV)
    result = run_shard(shard_config, base, SHARDS, 1, resume=True)
    assert result.resumed_at == 1
    spool = shard_spool_path(base, 1, SHARDS)
    indices = load_manifest(spool).indices
    reference_lines = serial_reference.splitlines(keepends=True)
    assert spool.read_bytes() == b"".join(
        reference_lines[i] for i in indices
    )


# ----------------------------------------------------------- CLI surface


def test_cli_orchestrate_with_kill_matches_serial_cli(
    tmp_path, shard_config, monkeypatch, capsys
):
    # End to end through the CLI: the --shards 1 --orchestrate spool is
    # the serial reference; a 3-shard run with an injected SIGKILL must
    # produce the identical file.
    ref = tmp_path / "ref.jsonl"
    argv = ["campaign", "--instances", "6", "--seed", "77",
            "--retries", "2", "--json"]
    assert main(argv + ["--shards", "1", "--orchestrate",
                        "--out", str(ref)]) == 0
    monkeypatch.setenv(KILL_ENV, "2:1")
    out = tmp_path / "mega.jsonl"
    assert main(argv + ["--shards", "3", "--orchestrate",
                        "--out", str(out)]) == 0
    capsys.readouterr()
    # NB: the CLI config defaults differ from shard_config (full-length
    # videos), so this compares CLI-vs-CLI, not against the fixture.
    assert out.read_bytes() == ref.read_bytes()


def test_cli_budget_exhausted_is_domain_error(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.setenv(KILL_ENV, "2:1,2:2")
    out = tmp_path / "mega.jsonl"
    code = main(["campaign", "--instances", "6", "--seed", "77",
                 "--shards", "3", "--orchestrate", "--retries", "1",
                 "--out", str(out)])
    assert code == 1
    err = capsys.readouterr().err
    assert "retry budget" in err
    assert "partial spools are preserved" in err
    # the failed shard's partial spool really is on disk
    spool = shard_spool_path(out, 2, 3)
    assert spool.exists()
    assert load_checkpoint(spool) is not None

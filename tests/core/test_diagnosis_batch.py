"""Batch diagnosis, the record-or-dict API, and v1/v2 persistence."""

import json

import pytest

from repro.core.construction import FeatureConstructor
from repro.core.diagnosis import DiagnosisReport, RootCauseAnalyzer


@pytest.fixture(scope="module")
def analyzer(mini_dataset):
    return RootCauseAnalyzer().fit(mini_dataset)


class TestDiagnoseBatch:
    def test_label_parity_with_looped_diagnose(self, analyzer, mini_dataset):
        looped = [analyzer.diagnose(inst) for inst in mini_dataset]
        batched = analyzer.diagnose_batch(mini_dataset.instances)
        assert len(batched) == len(mini_dataset)
        for one, many in zip(looped, batched):
            assert one.severity == many.severity
            assert one.location == many.location
            assert one.exact == many.exact

    def test_accepts_raw_dicts(self, analyzer, mini_dataset):
        rows = [dict(inst.features) for inst in mini_dataset.instances[:4]]
        batched = analyzer.diagnose_batch(rows)
        looped = [analyzer.diagnose(row) for row in rows]
        assert [r.exact for r in batched] == [r.exact for r in looped]

    def test_empty_batch(self, analyzer):
        assert analyzer.diagnose_batch([]) == []

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            RootCauseAnalyzer().diagnose_batch([{"mobile_hw_cpu_avg": 1.0}])

    def test_reports_are_complete(self, analyzer, mini_dataset):
        for report in analyzer.diagnose_batch(mini_dataset.instances[:3]):
            assert isinstance(report, DiagnosisReport)
            assert report.severity in ("good", "mild", "severe")
            assert report.vps == analyzer.vps
            assert "used_features" in report.details


class TestDiagnoseUnion:
    def test_diagnose_accepts_record(self, analyzer, mini_dataset):
        inst = mini_dataset[0]
        via_record = analyzer.diagnose(inst)
        via_dict = analyzer.diagnose(
            dict(inst.features),
            session_s=float(inst.meta.get("session_s", 0.0) or 0.0),
        )
        assert via_record.exact == via_dict.exact
        assert via_record.severity == via_dict.severity

    def test_diagnose_record_is_deprecated_alias(self, analyzer, mini_dataset):
        inst = mini_dataset[0]
        with pytest.warns(DeprecationWarning):
            legacy = analyzer.diagnose_record(inst)
        assert legacy.exact == analyzer.diagnose(inst).exact

    def test_explain_accepts_record(self, analyzer, mini_dataset):
        inst = mini_dataset[0]
        label, path = analyzer.explain(inst, task="exact")
        assert label == analyzer.diagnose(inst).exact
        assert isinstance(path, list)


class TestReportSerialisation:
    def test_to_dict_fields(self):
        report = DiagnosisReport(
            severity="severe",
            location="lan_severe",
            exact="wifi_interference_severe",
            vps=("mobile",),
        )
        data = report.to_dict()
        assert data["severity"] == "severe"
        assert data["cause"] == "wifi_interference"
        assert data["problem_location"] == "lan"
        assert data["has_problem"] is True
        assert data["vps"] == ["mobile"]
        assert "interference" in data["summary"]

    def test_to_json_round_trips(self, analyzer, mini_dataset):
        report = analyzer.diagnose(mini_dataset[0])
        data = json.loads(report.to_json())
        assert data == report.to_dict()


class TestPersistenceV2:
    def test_save_emits_v2_with_constructor_state(self, analyzer, tmp_path):
        path = tmp_path / "analyzer.json"
        analyzer.save(path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-analyzer-v2"
        assert payload["constructor"]["format"] == "repro-fc-v1"
        assert payload["constructor"]["nic_max_rates"]

    def test_v2_round_trip(self, analyzer, mini_dataset, tmp_path):
        path = tmp_path / "analyzer.json"
        analyzer.save(path)
        clone = RootCauseAnalyzer.load(path)
        assert isinstance(clone.constructor, FeatureConstructor)
        assert clone.constructor.fitted
        for inst in mini_dataset.instances[:5]:
            assert clone.diagnose(inst).exact == analyzer.diagnose(inst).exact

    def test_v1_payload_still_loads(self, analyzer, mini_dataset, tmp_path):
        """A pre-redesign export round-trips through the v2 loader."""
        path = tmp_path / "analyzer.json"
        analyzer.save(path)
        payload = json.loads(path.read_text())
        v1 = dict(payload)
        v1["format"] = "repro-analyzer-v1"
        v1["nic_max_rates"] = payload["constructor"]["nic_max_rates"]
        del v1["constructor"]
        path.write_text(json.dumps(v1))
        clone = RootCauseAnalyzer.load(path)
        for inst in mini_dataset.instances[:5]:
            assert clone.diagnose(inst).exact == analyzer.diagnose(inst).exact

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "repro-analyzer-v99"}))
        with pytest.raises(ValueError):
            RootCauseAnalyzer.load(path)


def test_fleet_report_uses_batch_path(analyzer, mini_dataset):
    """fleet_report rides diagnose_batch and stays consistent with it."""
    from repro.core.report import fleet_report

    fleet = fleet_report(analyzer, mini_dataset)
    batched = analyzer.diagnose_batch(mini_dataset.instances)
    severities = {}
    for report in batched:
        severities[report.severity] = severities.get(report.severity, 0) + 1
    assert fleet.severity_counts == severities
    assert fleet.n_sessions == len(mini_dataset)
    data = fleet.to_dict()
    assert data["n_sessions"] == len(mini_dataset)
    assert set(data["severity_counts"]) == set(severities)

"""Integration tests: evaluation protocol and the RootCauseAnalyzer API."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.diagnosis import DiagnosisReport, RootCauseAnalyzer
from repro.core.evaluation import evaluate_cv, evaluate_transfer


def test_evaluate_cv_runs_per_vp(mini_dataset):
    res = evaluate_cv(mini_dataset, "severity", ["mobile"], k=4)
    assert 0.0 <= res.accuracy <= 1.0
    assert res.confusion.total == len(mini_dataset)
    assert all(n.startswith("mobile_") for n in res.selected_features)
    assert res.name == "mobile"


def test_evaluate_cv_feature_subset(mini_dataset):
    subset = [n for n in mini_dataset.feature_names if "rtt" in n][:5]
    res = evaluate_cv(mini_dataset, "severity", ["mobile"], k=4,
                      select=False, feature_subset=subset)
    assert set(res.selected_features) <= set(subset)


def test_evaluate_cv_summary_renders(mini_dataset):
    res = evaluate_cv(mini_dataset, "severity", ["mobile"], k=4)
    text = res.summary()
    assert "accuracy" in text and "mobile" in text


def test_evaluate_transfer_frozen_pipeline(mini_dataset):
    res = evaluate_transfer(mini_dataset, mini_dataset, "severity", ["mobile"])
    # Train==test: transfer accuracy should be high (sanity of plumbing).
    assert res.accuracy > 0.8
    assert res.meta["n_train"] == len(mini_dataset)


def test_evaluate_transfer_existence_collapse(mini_dataset):
    res = evaluate_transfer(
        mini_dataset, mini_dataset, "severity", ["mobile"],
        test_label_kind="existence",
    )
    assert set(res.confusion.labels) <= {"good", "problematic"}


class TestRootCauseAnalyzer:
    def test_requires_known_vps(self):
        with pytest.raises(ValueError):
            RootCauseAnalyzer(vps=("cloud",))
        with pytest.raises(ValueError):
            RootCauseAnalyzer(vps=())

    def test_requires_enough_data(self):
        with pytest.raises(ValueError):
            RootCauseAnalyzer().fit(Dataset([]))

    def test_unfit_diagnose_rejected(self):
        with pytest.raises(RuntimeError):
            RootCauseAnalyzer().diagnose({})

    def test_fit_and_diagnose_records(self, mini_dataset):
        analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(mini_dataset)
        report = analyzer.diagnose(mini_dataset[0])
        assert isinstance(report, DiagnosisReport)
        assert report.severity in ("good", "mild", "severe")
        assert isinstance(report.summary(), str)

    def test_training_set_mostly_rediagnosed(self, mini_dataset):
        analyzer = RootCauseAnalyzer().fit(mini_dataset)
        correct = sum(
            analyzer.diagnose(inst).severity == inst.label("severity")
            for inst in mini_dataset
        )
        assert correct / len(mini_dataset) > 0.8

    def test_vp_scoping_enforced(self, mini_dataset):
        analyzer = RootCauseAnalyzer(vps=("server",)).fit(mini_dataset)
        for task in ("severity", "location", "exact"):
            assert all(n.startswith("server_")
                       for n in analyzer.selected_features(task))

    def test_diagnose_with_missing_features(self, mini_dataset):
        """Absent VP features are zero-filled, not an error."""
        analyzer = RootCauseAnalyzer().fit(mini_dataset)
        report = analyzer.diagnose({"mobile_hw_cpu_avg": 0.9})
        assert report.severity in ("good", "mild", "severe")

    def test_model_text_interpretable(self, mini_dataset):
        analyzer = RootCauseAnalyzer().fit(mini_dataset)
        text = analyzer.model_text("severity")
        assert "->" in text

    def test_report_properties(self):
        report = DiagnosisReport(
            severity="severe",
            location="lan_severe",
            exact="wifi_interference_severe",
            vps=("mobile",),
        )
        assert report.has_problem
        assert report.cause == "wifi_interference"
        assert report.problem_location == "lan"
        assert "interference" in report.summary()

    def test_good_report_summary(self):
        report = DiagnosisReport("good", "good", "good", ("mobile",))
        assert not report.has_problem
        assert "good" in report.summary()

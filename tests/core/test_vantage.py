"""Unit tests for vantage-point scoping."""

import pytest

from repro.core.vantage import (
    ALL_VPS,
    combo_name,
    features_for_vps,
    layer_of_feature,
    vp_of_feature,
)

NAMES = [
    "mobile_tcp_s2c_rtt_avg",
    "mobile_hw_cpu_avg",
    "mobile_radio_rssi_avg",
    "router_tcp_c2s_rtt_avg",
    "router_linklan_bridge_busy",
    "server_hw_cpu_avg",
    "server_tcp_s2c_data_pkts",
]


def test_vp_of_feature():
    assert vp_of_feature("mobile_tcp_x") == "mobile"
    assert vp_of_feature("server_hw_y") == "server"
    with pytest.raises(ValueError):
        vp_of_feature("satellite_tcp_x")


def test_layer_of_feature():
    assert layer_of_feature("mobile_tcp_s2c_rtt_avg") == "tcp"
    assert layer_of_feature("router_linklan_bridge_busy") == "linklan"


def test_scoping_single_vp():
    mobile = features_for_vps(NAMES, ["mobile"])
    assert all(n.startswith("mobile_") for n in mobile)
    assert len(mobile) == 3


def test_scoping_combination_preserves_order():
    combo = features_for_vps(NAMES, ["mobile", "server"])
    assert combo == [n for n in NAMES if not n.startswith("router_")]


def test_scoping_all():
    assert features_for_vps(NAMES, ALL_VPS) == NAMES


def test_unknown_vp_rejected():
    with pytest.raises(ValueError):
        features_for_vps(NAMES, ["isp"])


def test_combo_name():
    assert combo_name(("mobile",)) == "mobile"
    assert combo_name(("mobile", "server")) == "mobile+server"
    assert combo_name(ALL_VPS) == "combined"
    assert combo_name(("server", "router", "mobile")) == "combined"

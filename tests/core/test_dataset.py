"""Unit tests for Dataset/Instance."""

import numpy as np
import pytest

from repro.core.dataset import Dataset, Instance


def make_instance(i, label="good", extra=None):
    features = {"mobile_tcp_pkts": float(i), "server_hw_cpu_avg": 0.1 * i}
    if extra:
        features.update(extra)
    return Instance(
        features=features,
        labels={"severity": label, "location": label, "exact": label,
                "existence": "good" if label == "good" else "problematic"},
        mos=3.5 if label == "good" else 1.5,
        meta={"idx": i},
    )


def test_feature_universe_is_union():
    ds = Dataset([
        make_instance(0),
        make_instance(1, extra={"router_tcp_rtt": 0.1}),
    ])
    assert "router_tcp_rtt" in ds.feature_names
    assert ds.feature_names == sorted(ds.feature_names)


def test_to_matrix_zero_fills_missing():
    ds = Dataset([
        make_instance(0),
        make_instance(1, extra={"router_tcp_rtt": 0.5}),
    ])
    X = ds.to_matrix(["router_tcp_rtt"])
    assert X[0, 0] == 0.0
    assert X[1, 0] == 0.5


def test_to_matrix_subset_order():
    ds = Dataset([make_instance(3)])
    X = ds.to_matrix(["server_hw_cpu_avg", "mobile_tcp_pkts"])
    assert X[0, 0] == pytest.approx(0.3)
    assert X[0, 1] == 3.0


def test_labels_array():
    ds = Dataset([make_instance(0), make_instance(1, "severe")])
    assert list(ds.labels("severity")) == ["good", "severe"]
    assert list(ds.labels("existence")) == ["good", "problematic"]


def test_label_counts():
    ds = Dataset([make_instance(i, "good" if i % 2 else "mild") for i in range(6)])
    assert ds.label_counts("severity") == {"good": 3, "mild": 3}


def test_filter():
    ds = Dataset([make_instance(i, "good" if i < 3 else "severe") for i in range(5)])
    bad = ds.filter(lambda inst: inst.label("severity") != "good")
    assert len(bad) == 2


def test_merge():
    a = Dataset([make_instance(0)])
    b = Dataset([make_instance(1, extra={"x_y_z": 1.0})])
    merged = a.merged_with(b)
    assert len(merged) == 2
    assert "x_y_z" in merged.feature_names


def test_iteration_and_indexing():
    ds = Dataset([make_instance(i) for i in range(3)])
    assert ds[1].meta["idx"] == 1
    assert [inst.meta["idx"] for inst in ds] == [0, 1, 2]


def test_from_records(mini_campaign_records):
    ds = Dataset.from_records(mini_campaign_records)
    assert len(ds) == len(mini_campaign_records)
    inst = ds[0]
    assert set(inst.labels) == {"severity", "location", "exact", "existence"}
    assert inst.mos == mini_campaign_records[0].mos
    assert inst.features == mini_campaign_records[0].features

"""Failure-injection and robustness tests for the RCA pipeline.

The paper's deployment reality: vantage points disappear (Section 6.2),
probes fail mid-session, and values arrive degenerate.  The pipeline must
degrade, not crash.
"""

import numpy as np
import pytest

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset, Instance
from repro.core.diagnosis import RootCauseAnalyzer
from repro.core.evaluation import evaluate_cv
from repro.ml.fcbf import fcbf
from repro.ml.tree import C45Tree


def _degrade(inst: Instance, drop_prefix: str) -> Instance:
    features = {k: (0.0 if k.startswith(drop_prefix) else v)
                for k, v in inst.features.items()}
    return Instance(features=features, labels=dict(inst.labels),
                    mos=inst.mos, meta=dict(inst.meta))


def test_diagnosis_with_missing_vantage_point(mini_dataset):
    """A combined-trained model still answers when the router VP dies."""
    analyzer = RootCauseAnalyzer().fit(mini_dataset)
    for inst in mini_dataset.instances[:8]:
        degraded = _degrade(inst, "router_")
        report = analyzer.diagnose(degraded)
        assert report.severity in ("good", "mild", "severe")


def test_diagnosis_with_nan_features(mini_dataset):
    """NaNs from a broken probe must not crash prediction."""
    analyzer = RootCauseAnalyzer().fit(mini_dataset)
    inst = mini_dataset[0]
    poisoned = dict(inst.features)
    for key in list(poisoned)[:20]:
        poisoned[key] = float("nan")
    report = analyzer.diagnose(poisoned)
    assert report.severity in ("good", "mild", "severe")


def test_cv_with_constant_features():
    """All-constant columns are harmless (zero-variance guard)."""
    rng = np.random.default_rng(0)
    instances = []
    for i in range(60):
        label = "good" if i % 2 else "severe"
        instances.append(Instance(
            features={
                "mobile_tcp_constant": 5.0,
                "mobile_tcp_signal": (0.0 if label == "good" else 1.0)
                + rng.normal(0, 0.05),
            },
            labels={"severity": label, "location": label, "exact": label,
                    "existence": label},
        ))
    ds = Dataset(instances)
    res = evaluate_cv(ds, "severity", ["mobile"], k=4)
    assert res.accuracy > 0.9


def test_fcbf_all_constant_matrix():
    X = np.ones((50, 4))
    y = np.array(["a", "b"] * 25)
    selected, _su = fcbf(X, y)
    assert selected == []


def test_tree_single_instance_per_class():
    X = np.array([[0.0], [1.0]])
    y = np.array(["a", "b"])
    tree = C45Tree(min_leaf=1).fit(X, y)
    assert set(tree.predict(X)) <= {"a", "b"}


def test_constructor_empty_dataset():
    fc = FeatureConstructor().fit(Dataset([]))
    assert fc.nic_max_rates == {}
    assert fc.transform_features({"mobile_link_rx_rate": 5.0}) == {
        "mobile_link_rx_rate": 5.0
    }


def test_extreme_feature_magnitudes(mini_dataset):
    """Values 10 orders of magnitude apart must not break training."""
    analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(mini_dataset)
    inst = dict(mini_dataset[0].features)
    for key in list(inst)[:5]:
        inst[key] = 1e15
    report = analyzer.diagnose(inst)
    assert report.severity in ("good", "mild", "severe")

"""Tests for the drift monitor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dataset import Dataset, Instance
from repro.core.drift import DriftMonitor, DriftReport, ks_statistic


def make_dataset(mean, n=80, seed=0, feature="mobile_tcp_s2c_rtt_avg"):
    rng = np.random.default_rng(seed)
    return Dataset([
        Instance(
            features={feature: float(rng.normal(mean, 0.01)),
                      "mobile_hw_cpu_avg": float(rng.uniform(0, 1))},
            labels={"severity": "good", "location": "good", "exact": "good",
                    "existence": "good"},
        )
        for _ in range(n)
    ])


class TestKs:
    def test_identical_samples_zero(self):
        a = np.arange(100, dtype=float)
        assert ks_statistic(a, a.copy()) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_statistic(np.zeros(50), np.ones(50) * 10) == 1.0

    def test_empty_sample_zero(self):
        assert ks_statistic(np.array([]), np.ones(10)) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_property_bounded_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, 60)
        b = rng.normal(0.5, 1.5, 80)
        ks = ks_statistic(a, b)
        assert 0.0 <= ks <= 1.0
        assert ks == pytest.approx(ks_statistic(b, a))


class TestMonitor:
    def test_no_drift_on_same_distribution(self):
        train = make_dataset(0.05, seed=1)
        live = make_dataset(0.05, seed=2)
        monitor = DriftMonitor().fit(train)
        report = monitor.score(live)
        assert not report.should_retrain
        assert report.per_feature["mobile_tcp_s2c_rtt_avg"] < 0.35

    def test_detects_shifted_feature(self):
        train = make_dataset(0.05, seed=1)
        live = make_dataset(0.5, seed=2)  # 10x the RTT
        monitor = DriftMonitor().fit(train)
        report = monitor.score(live)
        assert "mobile_tcp_s2c_rtt_avg" in report.drifted
        # uniform CPU stays in place
        assert report.per_feature["mobile_hw_cpu_avg"] < 0.35

    def test_retrain_gate(self):
        train = make_dataset(0.05, seed=1)
        live = make_dataset(0.5, seed=2)
        monitor = DriftMonitor(retrain_share=0.4).fit(train)
        report = monitor.score(live)
        # 1 of 2 features drifted -> share 0.5 >= 0.4
        assert report.should_retrain

    def test_feature_scoping(self):
        train = make_dataset(0.05, seed=1)
        monitor = DriftMonitor(features=["mobile_hw_cpu_avg"]).fit(train)
        report = monitor.score(make_dataset(0.5, seed=2))
        assert list(report.per_feature) == ["mobile_hw_cpu_avg"]

    def test_unfit_monitor_rejected(self):
        with pytest.raises(RuntimeError):
            DriftMonitor().score(make_dataset(0.05))

    def test_report_renders(self):
        train = make_dataset(0.05, seed=1)
        monitor = DriftMonitor().fit(train)
        text = monitor.score(make_dataset(0.5, seed=3)).to_text()
        assert "Drift report" in text and "retrain" in text

    def test_empty_report(self):
        report = DriftReport()
        assert report.drift_share == 0.0
        assert not report.should_retrain

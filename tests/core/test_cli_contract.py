"""The CLI-wide contracts: uniform exit codes and JSON envelopes.

Every subcommand must exit 0 (ok) / 1 (domain failure) / 2 (usage
error), and every ``--json`` emission must be a versioned envelope
``{"schema": "repro-<cmd>-v1", "data": ...}``.  The exit-code tests are
parametrized over ``build_parser()`` so a new subcommand is covered the
moment it is registered.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.cli import build_parser, main


def subcommands():
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        return sorted(action.choices)
    raise AssertionError("parser has no subcommands")


@pytest.fixture()
def dataset_file(tmp_path, mini_dataset):
    path = tmp_path / "mini.pkl"
    with path.open("wb") as fh:
        pickle.dump(mini_dataset, fh)
    return str(path)


# ------------------------------------------------------------- exit codes


def test_every_subcommand_is_enumerable():
    assert set(subcommands()) == {
        "campaign", "diagnose", "evaluate", "lint", "report", "serve",
        "stream", "trace",
    }


@pytest.mark.parametrize("command", subcommands())
def test_unknown_flag_is_usage_error(command, capsys):
    assert main([command, "--no-such-flag"]) == 2
    capsys.readouterr()


@pytest.mark.parametrize("command", subcommands())
def test_help_exits_zero(command, capsys):
    assert main([command, "--help"]) == 0
    assert "usage:" in capsys.readouterr().out


def test_missing_command_is_usage_error(capsys):
    assert main([]) == 2
    assert main(["no-such-command"]) == 2
    capsys.readouterr()


@pytest.mark.parametrize("argv", [
    ["evaluate", "--experiment", "fig3", "--dataset", "/no/such/file.pkl"],
    ["diagnose", "--train", "/no/such/file.pkl"],
    ["report", "--train", "/no/such/file.pkl"],
    ["stream", "--source", "/no/such/file.jsonl", "--diagnose",
     "--train", "/no/such/file.pkl"],
], ids=["evaluate", "diagnose", "report", "stream"])
def test_missing_file_is_domain_failure(argv, capsys):
    assert main(argv) == 1
    assert "repro: error:" in capsys.readouterr().err


@pytest.mark.parametrize("argv, fragment", [
    (["diagnose", "--model", "m.json", "--train", "t.pkl"],
     "mutually exclusive"),
    (["diagnose", "--model", "m.json"], "--dataset"),
    (["serve", "--model", "m.json", "--train", "t.pkl"], "one model source"),
    (["serve", "--models", "d/", "--model", "m.json", "--train", "t.pkl"],
     "one model source"),
    (["lint", "/no/such/path"], "no such path"),
], ids=["model-and-train", "model-needs-dataset", "serve-two-sources",
        "serve-three-sources", "lint-missing-path"])
def test_flag_conflicts_are_usage_errors(argv, fragment, capsys):
    assert main(argv) == 2
    assert fragment in capsys.readouterr().err


def test_unknown_vps_is_usage_error(dataset_file, capsys):
    rc = main(["diagnose", "--train", dataset_file, "--vps", "mobile,bogus"])
    assert rc == 2
    assert "bogus" in capsys.readouterr().err


def test_trivial_success_is_zero(capsys):
    assert main(["lint", "--rules"]) == 0
    capsys.readouterr()


# ---------------------------------------------------------- JSON envelopes


def unwrap(out: str, command: str):
    envelope = json.loads(out)
    assert set(envelope) == {"schema", "data"}
    assert envelope["schema"] == f"repro-{command}-v1"
    return envelope["data"]


def test_campaign_envelope(tmp_path, capsys, monkeypatch):
    import repro.cli as cli
    from repro.core.dataset import Dataset, Instance

    def tiny(kind, instances, workers=None, sessions_per_proc=None):
        return Dataset([
            Instance(features={"mobile_tcp_pkts": 1.0},
                     labels={"severity": "good", "location": "good",
                             "exact": "good", "existence": "good"})
        ])

    monkeypatch.setattr(cli, "_default_dataset", tiny)
    out_path = tmp_path / "out.pkl"
    assert main(["campaign", "--kind", "controlled",
                 "--out", str(out_path), "--json"]) == 0
    data = unwrap(capsys.readouterr().out, "campaign")
    assert data["out"] == str(out_path)
    assert data["kind"] == "controlled"
    assert data["instances"] == 1
    assert "severity" in data and "features" in data


def test_diagnose_envelope(dataset_file, capsys):
    assert main(["diagnose", "--train", dataset_file, "--vps", "mobile",
                 "--limit", "2", "--json"]) == 0
    data = unwrap(capsys.readouterr().out, "diagnose")
    assert data["model"]["schema"] == "repro-model-info-v1"
    assert data["model"]["vps"] == ["mobile"]
    assert len(data["diagnoses"]) == 2


def test_report_envelope(dataset_file, capsys):
    assert main(["report", "--train", dataset_file, "--json"]) == 0
    data = unwrap(capsys.readouterr().out, "report")
    assert data["n_sessions"] > 0


def test_stream_envelope_is_ndjson(tmp_path, dataset_file,
                                   mini_campaign_records, capsys):
    from repro.pipeline import IterableSource, JsonlSink, Pipeline

    spool = tmp_path / "mini.jsonl"
    Pipeline(IterableSource(mini_campaign_records[:3]), JsonlSink(spool)).run()
    assert main(["stream", "--source", str(spool), "--diagnose",
                 "--train", dataset_file, "--vps", "mobile", "--json"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert len(lines) == 3
    for line in lines:
        entry = unwrap(line, "stream")
        assert "truth" in entry and "severity" in entry


def test_trace_envelope(capsys):
    assert main(["trace", "--kind", "controlled", "--instances", "2",
                 "--seed", "11", "--json"]) == 0
    data = unwrap(capsys.readouterr().out, "trace")
    assert data["campaign"]["instances"] == 2


def test_lint_envelope(tmp_path, capsys, monkeypatch):
    src = tmp_path / "clean.py"
    src.write_text('"""A file with nothing to flag."""\n')
    monkeypatch.chdir(tmp_path)
    assert main(["lint", str(src), "--json"]) == 0
    data = unwrap(capsys.readouterr().out, "lint")
    assert data["ok"] is True


# ------------------------------------------------------ sharded campaigns


@pytest.mark.parametrize("argv, fragment", [
    (["campaign", "--out", "c.jsonl", "--shard", "1"],
     "require(s) --shards"),
    (["campaign", "--out", "c.jsonl", "--orchestrate"],
     "require(s) --shards"),
    (["campaign", "--out", "c.jsonl", "--merge"], "require(s) --shards"),
    (["campaign", "--out", "c.jsonl", "--resume"], "require(s) --shards"),
    (["campaign", "--out", "c.jsonl", "--shards", "0", "--shard", "0"],
     ">= 1"),
    (["campaign", "--out", "c.jsonl", "--shards", "2"], "exactly one"),
    (["campaign", "--out", "c.jsonl", "--shards", "2", "--shard", "0",
      "--orchestrate"], "exactly one"),
    (["campaign", "--out", "c.jsonl", "--shards", "2", "--merge",
      "--orchestrate"], "exactly one"),
    (["campaign", "--out", "c.jsonl", "--shards", "2", "--shard", "2"],
     "in [0, 2)"),
    (["campaign", "--kind", "realworld", "--out", "c.jsonl",
      "--shards", "2", "--shard", "0"], "controlled"),
    (["campaign", "--out", "c.jsonl", "--shards", "2", "--merge",
      "--resume"], "--resume applies"),
], ids=["shard-alone", "orchestrate-alone", "merge-alone", "resume-alone",
        "zero-shards", "no-mode", "two-modes", "merge-and-orchestrate",
        "shard-out-of-range", "non-controlled", "resume-with-merge"])
def test_shard_flag_conflicts_are_usage_errors(argv, fragment, capsys):
    assert main(argv) == 2
    assert fragment in capsys.readouterr().err


def test_resume_of_unsharded_spool_is_usage_error(tmp_path, capsys):
    from repro.pipeline import shard_spool_path

    base = tmp_path / "c.jsonl"
    spool = shard_spool_path(base, 0, 2)
    spool.write_text('{"not": "a sharded spool"}\n')
    rc = main(["campaign", "--out", str(base), "--shards", "2",
               "--shard", "0", "--resume"])
    assert rc == 2
    assert "no shard manifest" in capsys.readouterr().err


def test_campaign_shard_envelope(tmp_path, capsys):
    base = tmp_path / "c.jsonl"
    argv = ["campaign", "--instances", "2", "--seed", "9",
            "--out", str(base), "--json"]
    assert main(argv + ["--shards", "1", "--shard", "0"]) == 0
    data = unwrap(capsys.readouterr().out, "campaign-shard")
    assert data["mode"] == "shard"
    assert data["shard"] == 0 and data["shards"] == 1
    assert data["records"] == 2 and data["resumed_at"] == 0

    assert main(argv + ["--shards", "1", "--merge"]) == 0
    data = unwrap(capsys.readouterr().out, "campaign-shard")
    assert data["mode"] == "merge"
    assert data["records"] == 2
    assert data["out"] == str(base)

"""Unit tests for Feature Construction (Section 3.2)."""

import pytest

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset, Instance


def make_instance(rx_rate, retx=5.0, pkts=100.0, session_s=20.0):
    return Instance(
        features={
            "mobile_tcp_s2c_retx_pkts": retx,
            "mobile_tcp_s2c_pkts": pkts,
            "mobile_tcp_s2c_retx_bytes": retx * 1460,
            "mobile_tcp_s2c_bytes": pkts * 1460,
            "mobile_tcp_flow_duration": 15.0,
            "mobile_link_rx_rate": rx_rate,
            "mobile_link_tx_rate": rx_rate / 10,
            "mobile_hw_cpu_avg": 0.4,
        },
        labels={"severity": "good", "location": "good", "exact": "good",
                "existence": "good"},
        meta={"session_s": session_s},
    )


@pytest.fixture()
def dataset():
    return Dataset([make_instance(2e6), make_instance(8e6), make_instance(4e6)])


def test_fit_learns_max_rates(dataset):
    fc = FeatureConstructor().fit(dataset)
    assert fc.nic_max_rates["mobile_link_rx_rate"] == 8e6


def test_utilization_in_unit_interval(dataset):
    fc = FeatureConstructor().fit(dataset)
    out = fc.transform(dataset)
    utils = [inst.features["mobile_link_rx_util"] for inst in out]
    assert utils == pytest.approx([0.25, 1.0, 0.5])
    assert all(0.0 <= u <= 1.0 for u in utils)


def test_count_normalisation_by_totals(dataset):
    fc = FeatureConstructor().fit(dataset)
    inst = fc.transform(dataset)[0]
    assert inst.features["mobile_tcp_s2c_retx_pkts_norm"] == pytest.approx(0.05)
    assert inst.features["mobile_tcp_s2c_retx_bytes_norm"] == pytest.approx(0.05)


def test_duration_normalised_by_session(dataset):
    fc = FeatureConstructor().fit(dataset)
    inst = fc.transform(dataset)[0]
    assert inst.features["mobile_tcp_flow_duration_norm"] == pytest.approx(15.0 / 20.0)


def test_zero_totals_safe():
    ds = Dataset([make_instance(1e6, retx=0.0, pkts=0.0)])
    fc = FeatureConstructor().fit(ds)
    inst = fc.transform(ds)[0]
    assert inst.features["mobile_tcp_s2c_retx_pkts_norm"] == 0.0


def test_raw_features_preserved(dataset):
    fc = FeatureConstructor().fit(dataset)
    inst = fc.transform(dataset)[0]
    assert inst.features["mobile_tcp_s2c_retx_pkts"] == 5.0
    assert inst.features["mobile_hw_cpu_avg"] == 0.4


def test_transform_before_fit_rejected(dataset):
    with pytest.raises(RuntimeError):
        FeatureConstructor().transform(dataset)


def test_transform_unseen_instance(dataset):
    """A live instance (diagnosis time) uses the *training* maxima."""
    fc = FeatureConstructor().fit(dataset)
    live = fc.transform_features(make_instance(16e6).features)
    assert live["mobile_link_rx_util"] == 1.0  # clamped


def test_constructed_names_listed(dataset):
    fc = FeatureConstructor().fit(dataset)
    names = fc.constructed_names(dataset.feature_names)
    assert "mobile_tcp_s2c_retx_pkts_norm" in names
    assert "mobile_link_rx_util" in names


def test_on_real_campaign(mini_dataset):
    fc = FeatureConstructor().fit(mini_dataset)
    out = fc.transform(mini_dataset)
    util_names = [n for n in out.feature_names if n.endswith("_util")]
    assert len(util_names) >= 6
    X = out.to_matrix(util_names)
    assert X.min() >= 0.0 and X.max() <= 1.0
    assert X.max() == 1.0  # someone is the max for each NIC

"""Unit tests for Feature Construction (Section 3.2)."""

import warnings

import pytest

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset, Instance


def make_instance(rx_rate, retx=5.0, pkts=100.0, session_s=20.0):
    return Instance(
        features={
            "mobile_tcp_s2c_retx_pkts": retx,
            "mobile_tcp_s2c_pkts": pkts,
            "mobile_tcp_s2c_retx_bytes": retx * 1460,
            "mobile_tcp_s2c_bytes": pkts * 1460,
            "mobile_tcp_flow_duration": 15.0,
            "mobile_link_rx_rate": rx_rate,
            "mobile_link_tx_rate": rx_rate / 10,
            "mobile_hw_cpu_avg": 0.4,
        },
        labels={"severity": "good", "location": "good", "exact": "good",
                "existence": "good"},
        meta={"session_s": session_s},
    )


@pytest.fixture()
def dataset():
    return Dataset([make_instance(2e6), make_instance(8e6), make_instance(4e6)])


def test_fit_learns_max_rates(dataset):
    fc = FeatureConstructor().fit(dataset)
    assert fc.nic_max_rates["mobile_link_rx_rate"] == 8e6


def test_utilization_in_unit_interval(dataset):
    fc = FeatureConstructor().fit(dataset)
    out = fc.transform(dataset)
    utils = [inst.features["mobile_link_rx_util"] for inst in out]
    assert utils == pytest.approx([0.25, 1.0, 0.5])
    assert all(0.0 <= u <= 1.0 for u in utils)


def test_count_normalisation_by_totals(dataset):
    fc = FeatureConstructor().fit(dataset)
    inst = fc.transform(dataset)[0]
    assert inst.features["mobile_tcp_s2c_retx_pkts_norm"] == pytest.approx(0.05)
    assert inst.features["mobile_tcp_s2c_retx_bytes_norm"] == pytest.approx(0.05)


def test_duration_normalised_by_session(dataset):
    fc = FeatureConstructor().fit(dataset)
    inst = fc.transform(dataset)[0]
    assert inst.features["mobile_tcp_flow_duration_norm"] == pytest.approx(15.0 / 20.0)


def test_zero_totals_safe():
    ds = Dataset([make_instance(1e6, retx=0.0, pkts=0.0)])
    fc = FeatureConstructor().fit(ds)
    inst = fc.transform(ds)[0]
    assert inst.features["mobile_tcp_s2c_retx_pkts_norm"] == 0.0


def test_raw_features_preserved(dataset):
    fc = FeatureConstructor().fit(dataset)
    inst = fc.transform(dataset)[0]
    assert inst.features["mobile_tcp_s2c_retx_pkts"] == 5.0
    assert inst.features["mobile_hw_cpu_avg"] == 0.4


def test_transform_before_fit_rejected(dataset):
    with pytest.raises(RuntimeError):
        FeatureConstructor().transform(dataset)


def test_transform_unseen_instance(dataset):
    """A live instance (diagnosis time) uses the *training* maxima."""
    fc = FeatureConstructor().fit(dataset)
    live = fc.transform_features(make_instance(16e6).features)
    assert live["mobile_link_rx_util"] == 1.0  # clamped


def test_constructed_names_listed(dataset):
    fc = FeatureConstructor().fit(dataset)
    names = fc.constructed_names(dataset.feature_names)
    assert "mobile_tcp_s2c_retx_pkts_norm" in names
    assert "mobile_link_rx_util" in names


class TestTransformRows:
    def test_matches_per_dict_transform(self, dataset):
        fc = FeatureConstructor().fit(dataset)
        rows = [inst.features for inst in dataset]
        matrix, names = fc.transform_rows(rows)
        for i, row in enumerate(rows):
            expected = fc.transform_features(row)
            got = dict(zip(names, matrix[i]))
            for name, value in expected.items():
                assert got[name] == pytest.approx(value), name

    def test_session_duration_normalisation(self, dataset):
        fc = FeatureConstructor().fit(dataset)
        rows = [inst.features for inst in dataset]
        matrix, names = fc.transform_rows(rows, session_s=[20.0, 0.0, 30.0])
        col = names.index("mobile_tcp_flow_duration_norm")
        assert matrix[0, col] == pytest.approx(15.0 / 20.0)
        assert matrix[1, col] == 0.0  # unknown duration: no normalisation
        assert matrix[2, col] == pytest.approx(15.0 / 30.0)

    def test_heterogeneous_rows_zero_filled(self, dataset):
        fc = FeatureConstructor().fit(dataset)
        rows = [dict(dataset[0].features), {"mobile_hw_cpu_avg": 0.9}]
        with pytest.warns(RuntimeWarning, match="zero-filled"):
            matrix, names = fc.transform_rows(rows)
        got = dict(zip(names, matrix[1]))
        assert got["mobile_hw_cpu_avg"] == 0.9
        assert got["mobile_tcp_s2c_retx_pkts"] == 0.0
        assert got["mobile_tcp_s2c_retx_pkts_norm"] == 0.0

    def test_zero_fill_warning_names_features_and_fires_once(self, dataset):
        fc = FeatureConstructor().fit(dataset)
        rows = [dict(dataset[0].features), {"mobile_hw_cpu_avg": 0.9}]
        with pytest.warns(RuntimeWarning) as caught:
            fc.transform_rows(rows)
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(messages) == 1
        # the warning lists the zero-filled names so the typo is findable
        assert "mobile_tcp_s2c_retx_pkts" in messages[0]
        # one-time per constructor: a second batch stays silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fc.transform_rows(rows)

    def test_zero_fill_refires_for_different_missing_set(self, dataset):
        fc = FeatureConstructor().fit(dataset)
        full = dict(dataset[0].features)
        with pytest.warns(RuntimeWarning, match="mobile_tcp_s2c_retx_pkts"):
            fc.transform_rows([full, {"mobile_hw_cpu_avg": 0.9}])
        # a *different* missing set is a different problem: warn again
        partial = {k: v for k, v in full.items()
                   if k != "mobile_tcp_flow_duration"}
        with pytest.warns(RuntimeWarning, match="mobile_tcp_flow_duration"):
            fc.transform_rows([full, partial])
        # but each already-reported set stays silent on repeat
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fc.transform_rows([full, {"mobile_hw_cpu_avg": 0.9}])
            fc.transform_rows([full, partial])

    def test_zero_fill_warns_on_missing_total_column(self, dataset):
        # homogeneous rows that lack the normalisation denominator hit the
        # other zero-fill path (missing total column, not ragged rows)
        fc = FeatureConstructor().fit(dataset)
        rows = [
            {k: v for k, v in inst.features.items()
             if k != "mobile_tcp_s2c_pkts"}
            for inst in dataset
        ]
        with pytest.warns(RuntimeWarning, match="mobile_tcp_s2c_pkts"):
            matrix, names = fc.transform_rows(rows)
        got = dict(zip(names, matrix[0]))
        assert got["mobile_tcp_s2c_retx_pkts_norm"] == 0.0
        # same missing set again: silent; a different one: warns
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fc.transform_rows(rows)
        ragged = [dict(dataset[0].features), {"mobile_hw_cpu_avg": 0.9}]
        with pytest.warns(RuntimeWarning):
            fc.transform_rows(ragged)

    def test_homogeneous_complete_rows_do_not_warn(self, dataset):
        fc = FeatureConstructor().fit(dataset)
        rows = [inst.features for inst in dataset]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fc.transform_rows(rows)

    def test_empty_batch(self, dataset):
        fc = FeatureConstructor().fit(dataset)
        matrix, names = fc.transform_rows([])
        assert matrix.shape == (0, 0) and names == []

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            FeatureConstructor().transform_rows([{"mobile_hw_cpu_avg": 1.0}])

    def test_on_real_campaign_matches(self, mini_dataset):
        fc = FeatureConstructor().fit(mini_dataset)
        rows = [inst.features for inst in mini_dataset.instances[:5]]
        matrix, names = fc.transform_rows(rows)
        for i, row in enumerate(rows):
            expected = fc.transform_features(row)
            got = dict(zip(names, matrix[i]))
            for name, value in expected.items():
                assert got[name] == pytest.approx(value), name


class TestStateRoundTrip:
    def test_round_trip(self, dataset):
        fc = FeatureConstructor().fit(dataset)
        clone = FeatureConstructor.from_state(fc.to_state())
        assert clone.fitted
        assert clone.nic_max_rates == fc.nic_max_rates
        live = make_instance(16e6).features
        assert clone.transform_features(live) == fc.transform_features(live)

    def test_state_is_json_safe(self, dataset):
        import json

        fc = FeatureConstructor().fit(dataset)
        payload = json.loads(json.dumps(fc.to_state()))
        assert FeatureConstructor.from_state(payload).nic_max_rates == fc.nic_max_rates

    def test_unfit_state_rejected(self):
        with pytest.raises(RuntimeError):
            FeatureConstructor().to_state()

    def test_bad_state_rejected(self):
        with pytest.raises(ValueError):
            FeatureConstructor.from_state({"format": "something-else"})


def test_on_real_campaign(mini_dataset):
    fc = FeatureConstructor().fit(mini_dataset)
    out = fc.transform(mini_dataset)
    util_names = [n for n in out.feature_names if n.endswith("_util")]
    assert len(util_names) >= 6
    X = out.to_matrix(util_names)
    assert X.min() >= 0.0 and X.max() <= 1.0
    assert X.max() == 1.0  # someone is the max for each NIC

"""Tests for the command-line interface."""

import pickle

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def dataset_file(tmp_path, mini_dataset):
    path = tmp_path / "mini.pkl"
    with path.open("wb") as fh:
        pickle.dump(mini_dataset, fh)
    return str(path)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_evaluate_fig3_on_pickle(dataset_file, capsys):
    rc = main(["evaluate", "--experiment", "fig3", "--dataset", dataset_file])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Problem detection" in out and "accuracy" in out


def test_evaluate_table1_on_pickle(dataset_file, capsys):
    rc = main(["evaluate", "--experiment", "table1", "--dataset", dataset_file])
    assert rc == 0
    assert "Table 1" in capsys.readouterr().out


def test_evaluate_transfer_experiment(dataset_file, capsys):
    rc = main([
        "evaluate", "--experiment", "fig8",
        "--train", dataset_file, "--dataset", dataset_file,
    ])
    assert rc == 0
    assert "Figure 8" in capsys.readouterr().out


def test_diagnose_prints_reports(dataset_file, capsys):
    rc = main([
        "diagnose", "--train", dataset_file, "--dataset", dataset_file,
        "--vps", "mobile", "--limit", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("truth=") == 4
    assert "agreement" in out


def test_campaign_roundtrip(tmp_path, capsys, monkeypatch):
    out_path = tmp_path / "out.pkl"

    # Keep the CLI test fast: patch the dataset builder.
    import repro.cli as cli

    def tiny(kind, instances, workers=None, sessions_per_proc=None):
        from repro.core.dataset import Dataset, Instance
        return Dataset([
            Instance(features={"mobile_tcp_pkts": 1.0},
                     labels={"severity": "good", "location": "good",
                             "exact": "good", "existence": "good"})
        ])

    monkeypatch.setattr(cli, "_default_dataset", tiny)
    rc = main(["campaign", "--kind", "controlled", "--out", str(out_path)])
    assert rc == 0
    with out_path.open("rb") as fh:
        ds = pickle.load(fh)
    assert len(ds) == 1


def test_bad_pickle_rejected(tmp_path, capsys):
    path = tmp_path / "junk.pkl"
    with path.open("wb") as fh:
        pickle.dump({"not": "a dataset"}, fh)
    rc = main(["evaluate", "--experiment", "fig3", "--dataset", str(path)])
    assert rc == 1  # domain failure, not usage
    assert "repro: error:" in capsys.readouterr().err


def test_report_command(dataset_file, capsys):
    rc = main(["report", "--train", dataset_file, "--dataset", dataset_file])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fleet QoE report" in out


def test_diagnose_batch_matches_loop(dataset_file, capsys):
    args = ["diagnose", "--train", dataset_file, "--dataset", dataset_file,
            "--vps", "mobile", "--limit", "6"]
    assert main(args) == 0
    looped = capsys.readouterr().out
    assert main(args + ["--batch"]) == 0
    batched = capsys.readouterr().out
    assert batched == looped


def test_diagnose_json_output(dataset_file, capsys):
    import json

    rc = main([
        "diagnose", "--train", dataset_file, "--dataset", dataset_file,
        "--vps", "mobile", "--limit", "3", "--batch", "--json",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-diagnose-v1"
    data = payload["data"]
    assert data["model"]["schema"] == "repro-model-info-v1"
    assert len(data["diagnoses"]) == 3
    for entry in data["diagnoses"]:
        assert entry["severity"] in ("good", "mild", "severe")
        assert "truth" in entry and "summary" in entry


def test_report_json_output(dataset_file, capsys):
    import json

    rc = main(["report", "--train", dataset_file, "--dataset", dataset_file,
               "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-report-v1"
    assert payload["data"]["n_sessions"] > 0
    assert "severity_counts" in payload["data"]


def test_campaign_accepts_workers(tmp_path, monkeypatch):
    out_path = tmp_path / "out.pkl"
    import repro.cli as cli

    seen = {}

    def tiny(kind, instances, workers=None, sessions_per_proc=None):
        seen["workers"] = workers
        from repro.core.dataset import Dataset, Instance
        return Dataset([
            Instance(features={"mobile_tcp_pkts": 1.0},
                     labels={"severity": "good", "location": "good",
                             "exact": "good", "existence": "good"})
        ])

    monkeypatch.setattr(cli, "_default_dataset", tiny)
    rc = main(["campaign", "--kind", "controlled", "--workers", "2",
               "--out", str(out_path)])
    assert rc == 0
    assert seen["workers"] == 2


def test_diagnose_explain_flag(dataset_file, capsys):
    rc = main([
        "diagnose", "--train", dataset_file, "--dataset", dataset_file,
        "--vps", "mobile", "--limit", "2", "--explain",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "because" in out


@pytest.fixture()
def spool_file(tmp_path, mini_campaign_records):
    from repro.pipeline import IterableSource, JsonlSink, Pipeline

    path = tmp_path / "mini.jsonl"
    Pipeline(IterableSource(mini_campaign_records[:6]), JsonlSink(path)).run()
    return str(path)


def test_stream_replays_spool(spool_file, capsys):
    rc = main(["stream", "--source", spool_file])
    assert rc == 0
    out = capsys.readouterr().out
    assert "streamed 6 sessions" in out


def test_stream_diagnoses_spool(spool_file, dataset_file, capsys):
    rc = main([
        "stream", "--source", spool_file, "--diagnose",
        "--train", dataset_file, "--vps", "mobile", "--chunk", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("truth=") == 6
    assert "streamed 6 sessions" in out


def test_stream_json_output(spool_file, dataset_file, capsys):
    import json

    rc = main([
        "stream", "--source", spool_file, "--diagnose",
        "--train", dataset_file, "--vps", "mobile", "--json",
    ])
    assert rc == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert len(lines) == 6
    for line in lines:
        envelope = json.loads(line)
        assert envelope["schema"] == "repro-stream-v1"
        entry = envelope["data"]
        assert entry["severity"] in ("good", "mild", "severe")
        assert "truth" in entry


def test_stream_source_rejects_resume(spool_file, capsys):
    assert main(["stream", "--source", spool_file, "--resume"]) == 2
    assert "--resume" in capsys.readouterr().err


def test_stream_source_rejects_sink(spool_file, tmp_path, capsys):
    rc = main(["stream", "--source", spool_file,
               "--sink", str(tmp_path / "copy.jsonl")])
    assert rc == 2
    assert "--sink" in capsys.readouterr().err


def test_stream_resume_requires_sink(capsys):
    assert main(["stream", "--resume"]) == 2
    assert "--sink" in capsys.readouterr().err


def test_stream_resume_refuses_foreign_spool(tmp_path, capsys):
    from repro.pipeline import Checkpoint, save_checkpoint

    spool = tmp_path / "foreign.jsonl"
    spool.write_text("{}\n")
    save_checkpoint(spool, Checkpoint(config_key="someone-else", completed=1))
    rc = main(["stream", "--kind", "controlled", "--instances", "2",
               "--resume", "--sink", str(spool)])
    assert rc == 1  # domain failure: spool exists but belongs elsewhere
    assert "different campaign" in capsys.readouterr().err


def test_stream_simulates_and_spools(tmp_path, capsys):
    spool = tmp_path / "sim.jsonl"
    rc = main(["stream", "--kind", "controlled", "--instances", "2",
               "--seed", "55", "--sink", str(spool)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "streamed 2 sessions" in out
    assert len(spool.read_text().splitlines()) == 2
    assert not spool.with_name(spool.name + ".ckpt").exists()

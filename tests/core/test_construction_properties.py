"""Property-based tests for Feature Construction invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.construction import FeatureConstructor
from repro.core.dataset import Dataset, Instance


def make_dataset(rates, retx_pairs):
    instances = []
    for rate, (retx, pkts) in zip(rates, retx_pairs):
        instances.append(Instance(
            features={
                "mobile_link_rx_rate": rate,
                "mobile_tcp_s2c_retx_pkts": float(retx),
                "mobile_tcp_s2c_pkts": float(pkts),
            },
            labels={"severity": "good", "location": "good", "exact": "good",
                    "existence": "good"},
            meta={"session_s": 10.0},
        ))
    return Dataset(instances)


@settings(max_examples=50, deadline=None)
@given(
    rates=st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=1,
                   max_size=12),
)
def test_utilization_always_in_unit_interval(rates):
    ds = make_dataset(rates, [(0, 10)] * len(rates))
    fc = FeatureConstructor().fit(ds)
    out = fc.transform(ds)
    utils = [inst.features["mobile_link_rx_util"] for inst in out]
    assert all(0.0 <= u <= 1.0 for u in utils)
    assert max(utils) == 1.0  # the dataset maximum defines full utilisation


@settings(max_examples=50, deadline=None)
@given(
    retx=st.integers(min_value=0, max_value=1000),
    pkts=st.integers(min_value=0, max_value=100000),
)
def test_count_normalisation_bounded(retx, pkts):
    retx = min(retx, pkts)  # cannot retransmit more packets than seen
    ds = make_dataset([1e6], [(retx, pkts)])
    fc = FeatureConstructor().fit(ds)
    out = fc.transform(ds)
    norm = out[0].features["mobile_tcp_s2c_retx_pkts_norm"]
    assert 0.0 <= norm <= 1.0
    if pkts > 0:
        assert norm == retx / pkts


@settings(max_examples=30, deadline=None)
@given(scale=st.floats(min_value=0.1, max_value=10.0))
def test_transform_is_scale_equivariant_for_utilization(scale):
    """Scaling every NIC rate by a constant leaves utilisations unchanged."""
    base = [1e5, 5e5, 1e6]
    a = make_dataset(base, [(0, 10)] * 3)
    b = make_dataset([r * scale for r in base], [(0, 10)] * 3)
    util_a = [i.features["mobile_link_rx_util"]
              for i in FeatureConstructor().fit_transform(a)]
    util_b = [i.features["mobile_link_rx_util"]
              for i in FeatureConstructor().fit_transform(b)]
    for x, y in zip(util_a, util_b):
        assert abs(x - y) < 1e-9


def test_transform_idempotent_on_constructed_names():
    """Re-transforming constructed output does not nest suffixes."""
    ds = make_dataset([1e6, 2e6], [(1, 10), (2, 20)])
    fc = FeatureConstructor().fit(ds)
    once = fc.transform(ds)
    twice = fc.transform(once)
    bad = [n for n in twice.feature_names if n.endswith("_norm_norm")]
    assert bad == []

"""Unit tests for feature selection wrapper and label helpers."""

import numpy as np
import pytest

from repro.core.dataset import Dataset, Instance
from repro.core.labeling import (
    LABEL_KINDS,
    collapse_to_existence,
    exact_label_vocabulary,
    label_array,
    location_label_vocabulary,
)
from repro.core.selection import FeatureSelector


def synthetic_dataset(n=240, seed=0):
    rng = np.random.default_rng(seed)
    instances = []
    for _ in range(n):
        label = rng.choice(["good", "mild", "severe"])
        strength = {"good": 0.0, "mild": 1.0, "severe": 2.0}[label]
        instances.append(
            Instance(
                features={
                    "mobile_tcp_s2c_rtt_avg": 0.05 + 0.1 * strength + rng.normal(0, 0.01),
                    "mobile_tcp_noise_a": rng.normal(0, 1),
                    "mobile_tcp_noise_b": rng.normal(0, 1),
                    "router_tcp_s2c_rtt_avg": 0.05 + 0.1 * strength + rng.normal(0, 0.01),
                },
                labels={"severity": label, "location": label, "exact": label,
                        "existence": "good" if label == "good" else "problematic"},
            )
        )
    return Dataset(instances)


def test_selector_keeps_informative_drops_noise():
    ds = synthetic_dataset()
    selector = FeatureSelector().fit(ds, "severity")
    assert any("rtt" in n for n in selector.selected)
    assert not any("noise" in n for n in selector.selected)


def test_selector_redundancy_pruning():
    ds = synthetic_dataset()
    selector = FeatureSelector().fit(ds, "severity")
    # mobile and router RTT are near-copies: one should be removed.
    assert len([n for n in selector.selected if "rtt" in n]) == 1


def test_selector_max_features_cap():
    ds = synthetic_dataset()
    selector = FeatureSelector(max_features=1).fit(ds, "severity")
    assert len(selector.selected) == 1


def test_selector_feature_scope_respected():
    ds = synthetic_dataset()
    selector = FeatureSelector().fit(
        ds, "severity", feature_names=["router_tcp_s2c_rtt_avg"]
    )
    assert selector.selected == ["router_tcp_s2c_rtt_avg"]


def test_selector_unfit_access_rejected():
    with pytest.raises(RuntimeError):
        FeatureSelector().selected


def test_ranked_su_descending():
    ds = synthetic_dataset()
    selector = FeatureSelector().fit(ds, "severity")
    values = [v for _, v in selector.ranked_su()]
    assert values == sorted(values, reverse=True)


class TestLabeling:
    def test_vocabularies(self):
        exact = exact_label_vocabulary()
        assert "good" in exact
        assert "wan_congestion_mild" in exact
        assert len(exact) == 1 + 7 * 2
        location = location_label_vocabulary()
        assert "lan_severe" in location
        assert len(location) == 1 + 3 * 2

    def test_label_array_kinds(self):
        ds = synthetic_dataset(n=10)
        for kind in LABEL_KINDS:
            assert len(label_array(ds, kind)) == 10
        with pytest.raises(ValueError):
            label_array(ds, "sentiment")

    def test_collapse_to_existence(self):
        labels = np.array(["good", "wan_congestion_mild", "good", "low_rssi_severe"])
        collapsed = collapse_to_existence(labels)
        assert list(collapsed) == ["good", "problematic", "good", "problematic"]

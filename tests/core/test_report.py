"""Tests for the fleet reporting module."""

import pytest

from repro.core.diagnosis import DiagnosisReport, RootCauseAnalyzer
from repro.core.report import FleetReport, fleet_report, segment_scorecard


@pytest.fixture(scope="module")
def analyzer_and_report(request):
    mini = request.getfixturevalue("mini_dataset")
    analyzer = RootCauseAnalyzer().fit(mini)
    return analyzer, fleet_report(analyzer, mini), mini


@pytest.fixture(scope="module")
def mini_dataset(request):
    # bridge the session fixture into module scope
    return request.getfixturevalue("_session_mini")


@pytest.fixture(scope="session")
def _session_mini(mini_campaign_records):
    from repro.core.dataset import Dataset

    return Dataset.from_records(mini_campaign_records)


def test_fleet_report_counts(analyzer_and_report):
    _analyzer, report, mini = analyzer_and_report
    assert report.n_sessions == len(mini)
    assert sum(report.severity_counts.values()) == len(mini)
    assert 0.0 <= report.problem_rate <= 1.0
    assert 1.0 <= report.mean_mos <= 4.23


def test_fleet_report_agreement_high_on_training_data(analyzer_and_report):
    _analyzer, report, _mini = analyzer_and_report
    assert report.agreement is not None
    assert report.agreement > 0.8


def test_fleet_report_worst_sorted(analyzer_and_report):
    _analyzer, report, _mini = analyzer_and_report
    mos_values = [mos for _, mos, _ in report.worst]
    assert mos_values == sorted(mos_values)
    assert len(report.worst) <= 5


def test_fleet_report_renders(analyzer_and_report):
    _analyzer, report, _mini = analyzer_and_report
    text = report.to_text()
    assert "Fleet QoE report" in text
    assert "problem rate" in text


def test_segment_scorecard_fractions():
    reports = [
        DiagnosisReport("severe", "wan_severe", "wan_congestion_severe", ("mobile",)),
        DiagnosisReport("mild", "wan_mild", "wan_shaping_mild", ("mobile",)),
        DiagnosisReport("severe", "lan_severe", "low_rssi_severe", ("mobile",)),
        DiagnosisReport("good", "good", "good", ("mobile",)),
    ]
    card = segment_scorecard(reports)
    assert card["wan"] == pytest.approx(2 / 3)
    assert card["lan"] == pytest.approx(1 / 3)
    assert sum(card.values()) == pytest.approx(1.0)


def test_segment_scorecard_empty():
    good = [DiagnosisReport("good", "good", "good", ("mobile",))]
    assert segment_scorecard(good) == {}


def test_empty_fleet_report():
    report = FleetReport()
    assert report.problem_rate == 0.0
    assert "sessions: 0" in report.to_text()

"""Unit tests for background traffic and server load generators."""

import pytest

from repro.testbed.testbed import Testbed, TestbedConfig
from repro.traffic.apachebench import ApacheBenchLoad
from repro.traffic.ditg import BackgroundTraffic, TrafficMix


def make_bed():
    return Testbed(TestbedConfig(seed=21))


def test_background_generates_traffic():
    bed = make_bed()
    bed.background.start()
    bed.sim.run(until=20.0)
    wan_pkts = bed.wan_down.pkts_sent + bed.wan_up.pkts_sent
    assert wan_pkts > 200  # voip + gaming + web cross the WAN
    bed.background.stop()


def test_stop_halts_udp_flows():
    bed = make_bed()
    bed.background.start()
    bed.sim.run(until=5.0)
    bed.background.stop()
    count = bed.wan_up.pkts_sent
    bed.sim.run(until=10.0)
    # a few in-flight packets may drain; no sustained flow remains
    assert bed.wan_up.pkts_sent - count < 30


def test_intensity_scales_volume():
    """UDP source volume scales with intensity (channels may saturate)."""
    volumes = {}
    for intensity in (0.5, 3.0):
        bed = Testbed(TestbedConfig(seed=22, traffic_mix=TrafficMix(intensity=intensity)))
        bed.background.start()
        bed.sim.run(until=15.0)
        volumes[intensity] = sum(s.bytes_sent for s in bed.background._udp_senders)
        bed.background.stop()
    assert volumes[3.0] > volumes[0.5] * 2.0


def test_mix_flags_disable_components():
    mix = TrafficMix(voip=False, gaming=False, telnet=False, web=False,
                     ftp=False, phone_apps=False)
    bed = Testbed(TestbedConfig(seed=23, traffic_mix=mix))
    bed.background.start()
    bed.sim.run(until=10.0)
    assert bed.wan_down.pkts_sent == 0
    assert bed.background.tcp_transfers_started == 0


def test_tcp_transfers_happen():
    bed = make_bed()
    bed.background.start()
    bed.sim.run(until=30.0)
    assert bed.background.tcp_transfers_started >= 2


def test_double_start_is_noop():
    bed = make_bed()
    bed.background.start()
    bed.background.start()
    bed.background.stop()


class TestApacheBench:
    def test_load_wanders_around_base(self):
        bed = make_bed()
        ab = ApacheBenchLoad(bed.sim, bed.video_server, base_load=0.5,
                             volatility=0.05)
        ab.start()
        samples = []
        for _ in range(60):
            bed.sim.run(until=bed.sim.now + 1.0)
            samples.append(bed.video_server.load)
        ab.stop()
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(0.5, abs=0.1)
        assert max(samples) - min(samples) > 0.01

    def test_load_clamped(self):
        bed = make_bed()
        ab = ApacheBenchLoad(bed.sim, bed.video_server, base_load=2.0)
        assert ab.base_load <= 0.95
        ab.start()
        bed.sim.run(until=10.0)
        assert 0.0 <= bed.video_server.load <= 0.98
        ab.stop()

    def test_stop_freezes_load(self):
        bed = make_bed()
        ab = ApacheBenchLoad(bed.sim, bed.video_server, base_load=0.4)
        ab.start()
        bed.sim.run(until=3.0)
        ab.stop()
        frozen = bed.video_server.load
        bed.sim.run(until=10.0)
        assert bed.video_server.load == frozen

"""CLI tests for ``repro trace``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import read_trace


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    tel = get_telemetry()
    tel.disable()
    tel.reset()


ARGS = ["trace", "--instances", "4", "--seed", "77"]


def test_trace_prints_stage_table(capsys):
    assert main(ARGS) == 0
    out = capsys.readouterr().out
    assert "trace: wall" in out
    assert "stage" in out and "inclusive" in out and "self" in out
    assert "campaign" in out and "count" in out
    assert "campaign: 4 instances" in out
    assert "pipeline.count.records_out = 4" in out


def test_trace_json_summary(capsys):
    assert main(ARGS + ["--json"]) == 0
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["schema"] == "repro-trace-v1"
    summary = envelope["data"]
    assert summary["campaign"]["instances"] == 4
    stages = {row["stage"]: row for row in summary["stages"]}
    assert stages["campaign"]["records_out"] == 4
    assert stages["count"]["records_in"] == 4
    assert summary["wall_s"] > 0


def test_trace_out_writes_readable_trace(tmp_path, capsys):
    out_path = tmp_path / "run.jsonl"
    assert main(ARGS + ["--out", str(out_path)]) == 0
    assert f"trace written to {out_path}" in capsys.readouterr().out
    payload = read_trace(out_path)
    assert payload["meta"]["command"] == "trace"
    assert payload["meta"]["instances"] == 4
    names = {span["name"] for span in payload["spans"]}
    assert "campaign.run" in names
    assert "campaign.instance" in names
    assert any(name.startswith("pipeline.stage.") for name in names)


def test_trace_leaves_registry_disabled():
    assert main(ARGS) == 0
    assert not get_telemetry().enabled

"""repro-trace-v1 round-trip: write_trace/read_trace must be exact."""

from __future__ import annotations

import json

import pytest

from repro.obs.telemetry import Telemetry
from repro.obs.trace import TRACE_FORMAT, merge_traces, read_trace, write_trace


def _nested_payload() -> dict:
    tel = Telemetry(enabled=True)
    with tel.span("run", kind="controlled") as run:
        with tel.span("instance", index=0) as inst:
            inst.count("records", 3)
            tel.event("checkpoint.save", spool="x.jsonl", completed=1)
        with tel.span("instance", index=1):
            pass
        run.count("instances", 2)
    tel.count("pipeline.count.records_out", 2)
    tel.observe("chunk_s", 0.125)
    tel.observe("chunk_s", 0.375)
    return tel.export(command="test")


def test_round_trip_is_exact(tmp_path):
    payload = _nested_payload()
    path = tmp_path / "trace.jsonl"
    lines = write_trace(path, payload)
    # header + 3 spans + 2 counters (events.total too) + 1 histogram + 1 event
    assert lines == len(path.read_text().splitlines())
    assert read_trace(path) == payload


def test_round_trip_preserves_nesting(tmp_path):
    payload = _nested_payload()
    path = tmp_path / "trace.jsonl"
    write_trace(path, payload)
    spans = read_trace(path)["spans"]
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    (run,) = by_name["run"]
    assert run["parent"] is None
    assert all(s["parent"] == run["id"] for s in by_name["instance"])


def test_write_is_deterministic(tmp_path):
    payload = _nested_payload()
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_trace(a, payload)
    write_trace(b, payload)
    assert a.read_bytes() == b.read_bytes()


def test_write_rejects_foreign_payload(tmp_path):
    with pytest.raises(ValueError):
        write_trace(tmp_path / "x.jsonl", {"format": "something-else"})


def test_read_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_trace(path)


def test_read_rejects_foreign_header(tmp_path):
    path = tmp_path / "foreign.jsonl"
    path.write_text(json.dumps({"format": "otel"}) + "\n")
    with pytest.raises(ValueError, match=TRACE_FORMAT):
        read_trace(path)


def test_read_rejects_unknown_kind(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"format": TRACE_FORMAT, "meta": {}}) + "\n"
        + json.dumps({"kind": "mystery", "name": "x"}) + "\n"
    )
    with pytest.raises(ValueError, match="mystery"):
        read_trace(path)


def _worker_payload(count: int) -> dict:
    tel = Telemetry(enabled=True)
    with tel.span("campaign.instance", index=count):
        tel.count("records", count)
        tel.observe("instance_s", float(count))
    return tel.export()


def test_merge_traces_adds_counters_across_workers(tmp_path):
    payloads = [_worker_payload(2), _worker_payload(5)]
    merged = merge_traces(payloads)
    assert merged["counters"]["records"] == 7
    hist = merged["histograms"]["instance_s"]
    assert hist["count"] == 2 and hist["total"] == 7.0
    # span ids re-based: all unique, worker stamped from each payload pid
    ids = [s["id"] for s in merged["spans"]]
    assert len(ids) == len(set(ids)) == 2
    assert all("worker" in s["attrs"] for s in merged["spans"])
    # the merged payload is itself round-trippable
    path = tmp_path / "merged.jsonl"
    write_trace(path, merged)
    assert read_trace(path) == merged

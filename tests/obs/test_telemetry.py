"""Unit tests for the telemetry registry: spans, counters, absorb."""

from __future__ import annotations

import pytest

from repro.obs.telemetry import (
    MAX_EVENTS,
    NULL_SPAN,
    Histogram,
    NullSpan,
    Telemetry,
    get_telemetry,
    set_telemetry,
    tracing,
)


class TestDisabled:
    def test_span_returns_shared_null_span(self):
        tel = Telemetry()
        with tel.span("a") as first:
            pass
        with tel.span("b", key=1) as second:
            pass
        assert first is NULL_SPAN
        assert second is NULL_SPAN
        assert isinstance(first, NullSpan)
        assert tel.spans == []

    def test_instruments_collect_nothing(self):
        tel = Telemetry()
        tel.count("c", 3)
        tel.observe("h", 1.5)
        tel.event("e", detail="x")
        tel.record_span("s", dur_s=0.1)
        assert tel.counters == {}
        assert tel.histograms == {}
        assert tel.events == []
        assert tel.spans == []

    def test_null_span_api_is_inert(self):
        NULL_SPAN.count("x")
        NULL_SPAN.set("k", "v")
        with NULL_SPAN as span:
            assert span is NULL_SPAN


class TestSpans:
    def test_nesting_assigns_parent_ids(self):
        tel = Telemetry(enabled=True)
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                pass
        assert outer.parent is None
        assert inner.parent == outer.id
        assert inner.id != outer.id
        # completion order: inner closes first
        assert [s.name for s in tel.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tel = Telemetry(enabled=True)
        with tel.span("outer") as outer:
            with tel.span("a") as a:
                pass
            with tel.span("b") as b:
                pass
        assert a.parent == outer.id and b.parent == outer.id
        assert a.id != b.id

    def test_span_counts_and_attrs(self):
        tel = Telemetry(enabled=True)
        with tel.span("s", kind="x") as span:
            span.count("records")
            span.count("records", 4)
            span.set("late", True)
        assert span.counts == {"records": 5}
        assert span.attrs == {"kind": "x", "late": True}
        assert span.dur_s >= 0.0

    def test_record_span_parents_to_open_span(self):
        tel = Telemetry(enabled=True)
        with tel.span("outer") as outer:
            tel.record_span("agg", dur_s=0.25, counts={"n": 7}, attrs={"k": 1})
        (agg,) = [s for s in tel.spans if s.name == "agg"]
        assert agg.parent == outer.id
        assert agg.dur_s == 0.25
        assert agg.counts == {"n": 7}
        assert agg.attrs == {"k": 1}

    def test_record_span_top_level_without_open_span(self):
        tel = Telemetry(enabled=True)
        tel.record_span("solo", dur_s=0.1, t0=2.0)
        (solo,) = tel.spans
        assert solo.parent is None
        assert solo.t0 == 2.0


class TestCountersHistogramsEvents:
    def test_counters_accumulate(self):
        tel = Telemetry(enabled=True)
        tel.count("a")
        tel.count("a", 2)
        tel.count("b", 5)
        assert tel.counters == {"a": 3, "b": 5}

    def test_histogram_summary(self):
        hist = Histogram()
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.to_dict() == {
            "count": 3, "total": 6.0, "min": 1.0, "max": 3.0,
        }

    def test_histogram_merge(self):
        hist = Histogram()
        hist.observe(2.0)
        hist.merge({"count": 2, "total": 9.0, "min": 4.0, "max": 5.0})
        assert hist.to_dict() == {
            "count": 3, "total": 11.0, "min": 2.0, "max": 5.0,
        }
        hist.merge({"count": 0, "total": 0.0, "min": 0.0, "max": 0.0})
        assert hist.count == 3

    def test_events_capped(self):
        tel = Telemetry(enabled=True)
        for i in range(MAX_EVENTS + 5):
            tel.event("e", i=i)
        assert len(tel.events) == MAX_EVENTS
        assert tel.counters["events.total"] == MAX_EVENTS + 5
        assert tel.counters["events.dropped"] == 5


class TestExportAbsorb:
    def _worker_payload(self, name: str, count: int) -> dict:
        worker = Telemetry(enabled=True)
        with worker.span(name, role="worker"):
            worker.count("records", count)
            worker.observe("latency", float(count))
            worker.event("done", n=count)
        return worker.export()

    def test_absorb_rebases_ids_and_stamps_worker(self):
        parent = Telemetry(enabled=True)
        with parent.span("run") as run:
            parent.absorb(self._worker_payload("instance", 2), worker="w1")
            parent.absorb(self._worker_payload("instance", 3), worker="w2")
        absorbed = [s for s in parent.spans if s.name == "instance"]
        assert {s.attrs["worker"] for s in absorbed} == {"w1", "w2"}
        # absorbed top-level spans hang off the span open at absorb time
        assert all(s.parent == run.id for s in absorbed)
        ids = [s.id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_absorb_merges_counters_and_histograms(self):
        parent = Telemetry(enabled=True)
        parent.absorb(self._worker_payload("a", 2))
        parent.absorb(self._worker_payload("b", 3))
        assert parent.counters["records"] == 5
        hist = parent.histograms["latency"].to_dict()
        assert hist["count"] == 2 and hist["total"] == 5.0
        assert len(parent.events) == 2

    def test_absorb_defaults_worker_to_payload_pid(self):
        parent = Telemetry(enabled=True)
        payload = self._worker_payload("a", 1)
        parent.absorb(payload)
        (span,) = [s for s in parent.spans if s.name == "a"]
        assert span.attrs["worker"] == payload["meta"]["pid"]

    def test_absorb_rejects_foreign_payload(self):
        parent = Telemetry(enabled=True)
        with pytest.raises(ValueError):
            parent.absorb({"format": "not-a-trace"})

    def test_absorb_noop_when_disabled(self):
        parent = Telemetry()
        parent.absorb(self._worker_payload("a", 1))
        assert parent.spans == [] and parent.counters == {}

    def test_export_meta_and_sorted_spans(self):
        tel = Telemetry(enabled=True)
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        payload = tel.export(command="test")
        assert payload["format"] == "repro-trace-v1"
        assert payload["meta"]["command"] == "test"
        names = [s["name"] for s in payload["spans"]]
        # sorted by start time, not completion order
        assert names == ["outer", "inner"]


class TestRegistryLifecycle:
    def test_reset_clears_everything(self):
        tel = Telemetry(enabled=True)
        with tel.span("s"):
            tel.count("c")
            tel.observe("h", 1.0)
            tel.event("e")
        tel.reset()
        assert tel.spans == [] and tel.counters == {}
        assert tel.histograms == {} and tel.events == []

    def test_set_telemetry_swaps_registry(self):
        scratch = Telemetry(enabled=True)
        previous = set_telemetry(scratch)
        try:
            assert get_telemetry() is scratch
        finally:
            set_telemetry(previous)
        assert get_telemetry() is previous

    def test_tracing_restores_enabled_state(self):
        tel = get_telemetry()
        assert not tel.enabled
        with tracing() as traced:
            assert traced is tel
            assert tel.enabled
            with tel.span("s"):
                pass
        assert not tel.enabled
        # collected data is left for export after the block
        assert [s.name for s in tel.spans] == ["s"]
        tel.reset()

"""Telemetry must be invisible in the data: traced == untraced, bit for bit.

The registry promises that enabling tracing changes what is *measured*,
never what is *computed* — no RNG draws, no simulation-clock reads, no
reordering.  These tests run the same seeded work traced and untraced
(serial and with worker fan-out) and require identical outputs.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.diagnosis import RootCauseAnalyzer
from repro.obs.telemetry import get_telemetry, tracing
from repro.pipeline import CollectSink, DiagnoseStage, IterableSource, Pipeline
from repro.testbed.campaign import CampaignConfig, run_campaign


def tiny_config():
    return CampaignConfig(n_instances=6, seed=31,
                          video_duration_range=(8.0, 10.0))


def record_tuple(record):
    return (record.features, record.app_metrics, record.mos, record.severity,
            record.fault_name, record.fault_severity, record.fault_location,
            record.fault_intensity, record.meta)


@contextmanager
def traced():
    """tracing() that also drops the collected data afterwards."""
    with tracing() as tel:
        yield tel
    get_telemetry().reset()


@pytest.fixture(scope="module")
def untraced_records():
    assert not get_telemetry().enabled
    return run_campaign(tiny_config())


class TestCampaignEquivalence:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_traced_records_bit_identical(self, untraced_records, workers):
        with traced() as tel:
            records = run_campaign(tiny_config(), workers=workers)
            # the trace actually observed the run (one span per instance)
            instance_spans = [s for s in tel.spans
                              if s.name == "campaign.instance"]
            assert len(instance_spans) == len(untraced_records)
        assert ([record_tuple(r) for r in records]
                == [record_tuple(r) for r in untraced_records])

    def test_parallel_traced_stamps_workers(self, untraced_records):
        with traced() as tel:
            records = run_campaign(tiny_config(), workers=2)
            workers = {s.attrs.get("worker", "main") for s in tel.spans
                       if s.name == "campaign.instance"}
        assert len(workers) >= 1  # at least one worker attributed
        assert ([record_tuple(r) for r in records]
                == [record_tuple(r) for r in untraced_records])


class TestDiagnosisEquivalence:
    def _streamed_reports(self, analyzer, records):
        sink = CollectSink()
        Pipeline(
            IterableSource(records), DiagnoseStage(analyzer, chunk=5), sink
        ).run()
        return [item.report.to_dict() for item in sink.result()]

    def test_streamed_diagnoses_identical(self, mini_dataset,
                                          mini_campaign_records):
        analyzer = RootCauseAnalyzer(vps=("mobile", "router")).fit(mini_dataset)
        baseline = self._streamed_reports(analyzer, mini_campaign_records)
        with traced():
            traced_reports = self._streamed_reports(
                analyzer, mini_campaign_records
            )
        assert traced_reports == baseline

    def test_trained_tree_predictions_identical(self, mini_dataset,
                                                mini_campaign_records):
        untraced_analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(mini_dataset)
        baseline = [r.to_dict() for r in
                    untraced_analyzer.diagnose_batch(mini_campaign_records)]
        with traced():
            traced_analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(
                mini_dataset
            )
            reports = [r.to_dict() for r in
                       traced_analyzer.diagnose_batch(mini_campaign_records)]
        assert reports == baseline

    def test_cross_validation_matrix_identical(self, mini_dataset):
        from repro.ml.cross_validation import cross_validate
        from repro.ml.naive_bayes import GaussianNB

        X = mini_dataset.to_matrix()
        y = np.array(mini_dataset.labels("severity"))
        baseline = cross_validate(lambda: GaussianNB(), X, y, k=4, seed=3)
        with traced() as tel:
            result = cross_validate(lambda: GaussianNB(), X, y, k=4, seed=3)
            assert any(s.name == "ml.cv.fold" for s in tel.spans)
        assert result.labels == baseline.labels
        assert np.array_equal(result.matrix, baseline.matrix)

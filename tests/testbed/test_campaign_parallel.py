"""Parallel campaign engine: worker fan-out must be invisible in the data.

The serial/parallel equivalence guarantee is the contract the cached
datasets rely on (the cache key excludes the worker count), so these tests
compare full records -- features, labels and metadata -- not just shapes.
"""

import pytest

from repro.testbed import campaign as campaign_mod
from repro.testbed.campaign import (
    CampaignConfig,
    campaign_seeds,
    iter_campaign,
    resolve_workers,
    run_campaign,
)
from repro.testbed.realworld import WildConfig, run_wild_campaign


def _tiny_config(n=3, seed=77):
    return CampaignConfig(n_instances=n, seed=seed,
                          video_duration_range=(10.0, 14.0))


def _record_tuple(record):
    return (record.features, record.exact_label, record.location_label,
            record.severity, record.mos, record.meta)


def test_campaign_seeds_match_serial_draws():
    config = _tiny_config(n=5)
    import random

    rng = random.Random(config.seed)
    expected = [rng.randrange(2**31) for _ in range(5)]
    assert campaign_seeds(config.seed, 5) == expected


def test_parallel_equals_serial():
    config = _tiny_config()
    serial = run_campaign(config, workers=1)
    parallel = run_campaign(config, workers=3)
    assert [_record_tuple(r) for r in serial] == [_record_tuple(r) for r in parallel]


def test_progress_streams_in_order_under_workers():
    config = _tiny_config()
    seen = []
    run_campaign(config, workers=2, progress=lambda i, r: seen.append(i))
    assert seen == [0, 1, 2]


def test_iter_campaign_parallel_is_ordered():
    config = _tiny_config()
    indices = [r.meta["instance_index"]
               for r in iter_campaign(config, workers=2)]
    assert indices == [0, 1, 2]


def test_serial_fallback_without_fork(monkeypatch):
    """Platforms without fork must silently fall back to the serial path."""
    monkeypatch.setattr(campaign_mod, "_fork_context", lambda: None)
    config = _tiny_config(n=2)
    records = run_campaign(config, workers=4)
    assert [r.meta["instance_index"] for r in records] == [0, 1]


def test_resolve_workers_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers(None) == 3
    assert resolve_workers(2) == 2  # explicit argument wins
    assert resolve_workers(0) == 1  # clamped


def test_resolve_workers_tolerates_garbage_env(monkeypatch):
    """A typo'd REPRO_WORKERS must degrade to serial, not crash."""
    monkeypatch.setenv("REPRO_WORKERS", "abc")
    with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
        assert resolve_workers(None) == 1
    assert resolve_workers(2) == 2  # explicit argument still wins quietly


@pytest.mark.slow
def test_wild_campaign_parallel_equals_serial():
    config = WildConfig(n_instances=3, seed=81,
                        video_duration_range=(10.0, 12.0))
    serial = run_wild_campaign(config, workers=1)
    parallel = run_wild_campaign(config, workers=3)
    assert [_record_tuple(r) for r in serial] == [_record_tuple(r) for r in parallel]

"""Fast-path equivalence: the simnet rework must be invisible in the data.

The calendar scheduler, the batched RNG, packet/event pooling and the
incremental probes are throughput work only -- campaign records must stay
*byte-identical* across scheduler implementations, RNG modes and worker
counts, and the dataset cache key must not move (CACHE_VERSION stays 5:
cached datasets from before the rework remain valid).
"""

import pickle

from repro.experiments.common import CACHE_VERSION, _config_key
from repro.testbed.campaign import CampaignConfig, run_campaign


def _tiny_config():
    return CampaignConfig(n_instances=3, seed=77,
                          video_duration_range=(10.0, 14.0))


def _payload(records):
    # Pickle per record, not the whole list: pickling a list memoizes
    # objects shared *across* records (string interning differs between
    # the serial path and worker subprocesses) without changing any value.
    return [
        pickle.dumps(
            (r.features, r.app_metrics, r.mos, r.severity, r.fault_name,
             r.fault_severity, r.fault_location, r.fault_intensity, r.meta)
        )
        for r in records
    ]


def test_records_identical_across_schedulers(monkeypatch):
    monkeypatch.setenv("REPRO_SIMNET_SCHEDULER", "calendar")
    calendar = _payload(run_campaign(_tiny_config(), workers=1))
    monkeypatch.setenv("REPRO_SIMNET_SCHEDULER", "reference")
    reference = _payload(run_campaign(_tiny_config(), workers=1))
    assert calendar == reference


def test_records_identical_across_rng_modes(monkeypatch):
    monkeypatch.setenv("REPRO_SIMNET_RNG", "batched")
    batched = _payload(run_campaign(_tiny_config(), workers=1))
    monkeypatch.setenv("REPRO_SIMNET_RNG", "stdlib")
    stdlib = _payload(run_campaign(_tiny_config(), workers=1))
    assert batched == stdlib


def test_records_identical_serial_vs_parallel():
    serial = _payload(run_campaign(_tiny_config(), workers=1))
    parallel = _payload(run_campaign(_tiny_config(), workers=4))
    assert serial == parallel


def test_cache_version_not_bumped():
    """The rework changes no record bytes, so caches stay valid."""
    assert CACHE_VERSION == 5


def test_cache_key_stable():
    """The campaign config hash (the .repro_cache file name) is pinned."""
    assert _config_key(_tiny_config()) == _config_key(_tiny_config())
    # Pinned against the pre-rework value: a moved key would silently
    # orphan every cached dataset.
    assert _config_key(CampaignConfig()) == "f3cb80daeabac0b5"

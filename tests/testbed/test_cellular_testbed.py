"""Integration tests for the cellular testbed and RNC probe."""

import random

import pytest

from repro.testbed.cellular import (
    CellularConfig,
    CellularTestbed,
    run_cellular_campaign,
)
from repro.video.catalog import VideoCatalog

CATALOG = VideoCatalog(size=10, duration_range=(12.0, 18.0), seed=5)
SD = next(v for v in CATALOG if v.definition == "SD")


def test_healthy_cellular_session():
    bed = CellularTestbed(CellularConfig(seed=71))
    record = bed.run_video_session(SD)
    bed.shutdown()
    assert record.severity in ("good", "mild")
    assert record.meta["wan_profile"] == "cellular"
    # RNC features present under the router prefix.
    assert "router_radio_rscp_avg" in record.features
    assert "router_radio_cell_load" in record.features
    # The phone's own radio view exists but never includes cell state.
    assert "mobile_radio_rscp_avg" in record.features
    assert "mobile_radio_cell_load" not in record.features


def test_weak_signal_condition_degrades():
    rng = random.Random(2)
    bed = CellularTestbed(CellularConfig(seed=72))
    record = bed.run_video_session(SD, condition="weak_signal",
                                   severity="severe", rng=rng)
    bed.shutdown()
    assert record.fault_name == "weak_signal"
    assert record.features["router_radio_rscp_avg"] < -100.0
    assert record.severity in ("mild", "severe")


def test_cell_load_condition_visible_at_rnc_only():
    rng = random.Random(3)
    bed = CellularTestbed(CellularConfig(seed=73))
    record = bed.run_video_session(SD, condition="cell_load",
                                   severity="severe", rng=rng)
    bed.shutdown()
    assert record.features["router_radio_cell_load"] > 0.8


def test_unknown_condition_rejected():
    bed = CellularTestbed(CellularConfig(seed=74))
    with pytest.raises(ValueError):
        bed.apply_condition("solar_flare", "mild", random.Random(0))
    bed.shutdown()


@pytest.mark.slow
def test_cellular_campaign_smoke():
    records = run_cellular_campaign(n_instances=4, seed=75)
    assert len(records) == 4
    names = {r.fault_name for r in records}
    assert names  # mix of none/conditions
    for record in records:
        assert record.severity in ("good", "mild", "severe")

"""Multi-session equivalence: interleaving must be invisible in the data.

The multi-session refactor runs K independent sessions on one shared
event loop (one scheduler, one RNG block allocator).  The bit-identity
contract: every session's ``SessionRecord`` must be byte-identical to
running it alone, across sessions-per-proc counts, scheduler
implementations, RNG modes and worker counts, for progressive *and* ABR
delivery and for every fault family.
"""

import pickle
import random

import pytest

from repro.faults.congestion import LanCongestion, WanCongestion
from repro.faults.load import MobileLoad
from repro.faults.shaping import LanShaping, WanShaping
from repro.faults.unknown import DnsMisconfiguration, MiddleboxInterference
from repro.faults.wireless_faults import LowRssi, WifiInterference
from repro.testbed.campaign import CampaignConfig, run_campaign
from repro.testbed.testbed import SessionSpec, Testbed, TestbedConfig, run_sessions
from repro.video.catalog import VideoCatalog

#: every concrete fault family, plus the healthy (no-fault) case
FAULT_FAMILIES = [
    None,
    LanCongestion,
    WanCongestion,
    MobileLoad,
    WanShaping,
    LanShaping,
    DnsMisconfiguration,
    MiddleboxInterference,
    LowRssi,
    WifiInterference,
]

_CATALOG = VideoCatalog(size=20, duration_range=(8.0, 11.0), seed=5)


def _payload(records):
    # Pickle per record, not the whole list: pickling a list memoizes
    # objects shared *across* records without changing any value.
    return [
        pickle.dumps(
            (r.features, r.app_metrics, r.mos, r.severity, r.fault_name,
             r.fault_severity, r.fault_location, r.fault_intensity, r.meta)
        )
        for r in records
    ]


def _specs(kind="video", families=None):
    """Fresh specs (fresh fault objects and rngs) for one run arm.

    Each arm of a comparison must rebuild its specs: a ``Fault`` owns an
    intensity rng whose state advances when the fault is applied.
    """
    specs = []
    for i, fault_cls in enumerate(families or FAULT_FAMILIES):
        config = TestbedConfig(seed=1000 + i)
        profile = _CATALOG.pick(random.Random(3000 + i))
        fault = None
        if fault_cls is not None:
            severity = "mild" if i % 2 else "severe"
            fault = fault_cls(severity, random.Random(2000 + i))
        specs.append(SessionSpec(config, profile, fault, kind))
    return specs


def _solo(kind="video", families=None):
    records = []
    for spec in _specs(kind, families):
        testbed = Testbed(spec.config)
        if kind == "video":
            records.append(testbed.run_video_session(spec.profile, spec.fault))
        else:
            records.append(testbed.run_abr_session(spec.profile, spec.fault))
        testbed.shutdown()
    return records


# --------------------------------------------------------- batch vs solo


def test_batch_video_matches_solo_every_fault_family():
    """K interleaved progressive sessions == K solo runs, per fault family."""
    solo = _payload(_solo("video"))
    batch = _payload(Testbed.run_video_sessions(_specs("video")))
    assert batch == solo


def test_batch_abr_matches_solo():
    """Interleaving is delivery-agnostic: ABR sessions are identical too."""
    families = [None, WanCongestion, LowRssi, MobileLoad]
    solo = _payload(_solo("abr", families))
    batch = _payload(Testbed.run_abr_sessions(_specs("abr", families)))
    assert batch == solo


def test_batch_identical_across_schedulers():
    calendar = _payload(Testbed.run_video_sessions(
        _specs("video"), scheduler="calendar"))
    reference = _payload(Testbed.run_video_sessions(
        _specs("video"), scheduler="reference"))
    assert calendar == reference


def test_batch_identical_across_rng_modes():
    batched = _payload(Testbed.run_video_sessions(
        _specs("video"), rng_mode="batched"))
    stdlib = _payload(Testbed.run_video_sessions(
        _specs("video"), rng_mode="stdlib"))
    assert batched == stdlib


# ------------------------------------------------------- campaign level


def _tiny_campaign():
    return CampaignConfig(n_instances=8, seed=123,
                          video_duration_range=(8.0, 10.0))


@pytest.fixture(scope="module")
def serial_campaign():
    """The serial reference arm, shared by every campaign comparison."""
    return _payload(run_campaign(_tiny_campaign(), workers=1,
                                 sessions_per_proc=1))


@pytest.mark.parametrize("k", [8, 64])
def test_campaign_sessions_per_proc_identical(serial_campaign, k):
    """sessions_per_proc K ∈ {8, 64} == the serial reference, workers=1."""
    interleaved = _payload(run_campaign(_tiny_campaign(), workers=1,
                                        sessions_per_proc=k))
    assert interleaved == serial_campaign


def test_campaign_composes_with_workers(serial_campaign):
    """workers x sessions_per_proc: batches fan out over the pool."""
    combined = _payload(run_campaign(_tiny_campaign(), workers=4,
                                     sessions_per_proc=2))
    assert combined == serial_campaign


def test_campaign_env_knob(serial_campaign, monkeypatch):
    """REPRO_SESSIONS_PER_PROC is the env twin of the argument."""
    monkeypatch.setenv("REPRO_SESSIONS_PER_PROC", "4")
    via_env = _payload(run_campaign(_tiny_campaign(), workers=1))
    assert via_env == serial_campaign

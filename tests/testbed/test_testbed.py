"""Integration tests: the assembled testbed and single-session runs."""

import random

import pytest

from repro.faults import make_fault
from repro.testbed.testbed import SessionRecord, Testbed, TestbedConfig
from repro.video.catalog import VideoCatalog

CATALOG = VideoCatalog(size=10, duration_range=(10.0, 16.0), seed=5)
SD = next(v for v in CATALOG if v.definition == "SD")
HD = next(v for v in CATALOG if v.definition == "HD")


def run_one(seed=31, fault=None, profile=SD, **overrides):
    bed = Testbed(TestbedConfig(seed=seed, **overrides))
    record = bed.run_video_session(profile, fault=fault)
    bed.shutdown()
    return record


def test_invalid_wan_profile_rejected():
    with pytest.raises(ValueError):
        Testbed(TestbedConfig(wan_profile="satellite"))


def test_healthy_session_record():
    record = run_one()
    assert record.fault_name == "none"
    assert record.severity == "good"
    assert record.exact_label == "good"
    assert record.mos > 3.0
    assert record.app_metrics["completed"] == 1.0


def test_feature_namespace_complete():
    record = run_one()
    prefixes = {name.split("_", 1)[0] for name in record.features}
    assert prefixes == {"mobile", "router", "server"}
    # every probe layer contributed
    assert any("_tcp_" in n for n in record.features)
    assert any("_hw_" in n for n in record.features)
    assert any("_radio_" in n for n in record.features)
    assert any("_link" in n for n in record.features)
    assert len(record.features) >= 280


def test_video_flow_observed_at_all_vps():
    record = run_one()
    for vp in ("mobile", "router", "server"):
        assert record.features[f"{vp}_tcp_s2c_data_bytes"] > 0, vp


def test_severe_wan_shaping_degrades_qoe():
    fault = make_fault("wan_shaping", "severe", random.Random(1))
    record = run_one(fault=fault, profile=HD)
    assert record.severity in ("mild", "severe")
    assert record.exact_label.startswith("wan_shaping")
    assert record.location_label.startswith("wan")


def test_severe_mobile_load_detected_in_cpu_feature():
    fault = make_fault("mobile_load", "severe", random.Random(2))
    record = run_one(fault=fault, profile=HD)
    assert record.features["mobile_hw_cpu_avg"] > 0.75
    healthy = run_one(profile=HD)
    assert record.features["mobile_hw_cpu_avg"] > healthy.features["mobile_hw_cpu_avg"]


def test_low_rssi_visible_in_radio_feature():
    fault = make_fault("low_rssi", "severe", random.Random(3))
    record = run_one(fault=fault)
    assert record.features["mobile_radio_rssi_avg"] < -85.0


def test_interference_raises_retries_not_rssi():
    fault = make_fault("wifi_interference", "severe", random.Random(4))
    record = run_one(fault=fault)
    healthy = run_one()
    assert record.features["mobile_radio_rssi_avg"] > -70.0
    assert (
        record.features["mobile_radio_retry_rate"]
        > healthy.features["mobile_radio_retry_rate"]
    )


def test_fault_cleared_after_session():
    bed = Testbed(TestbedConfig(seed=33))
    fault = make_fault("wan_shaping", "severe", random.Random(5))
    baseline_rate = bed.wan_down.rate_bps
    bed.run_video_session(SD, fault=fault)
    assert bed.wan_down.rate_bps == baseline_rate
    assert not fault.active
    bed.shutdown()


def test_sequential_sessions_on_one_testbed():
    bed = Testbed(TestbedConfig(seed=34))
    first = bed.run_video_session(SD)
    second = bed.run_video_session(SD)
    bed.shutdown()
    assert first.severity == "good"
    assert second.severity == "good"
    # the second session observed its own flow, not the first one's
    assert second.features["mobile_tcp_s2c_data_bytes"] == pytest.approx(
        SD.size_bytes, rel=0.05
    )


def test_reproducible_with_same_seed():
    a = run_one(seed=35)
    b = run_one(seed=35)
    assert a.features == b.features
    assert a.mos == b.mos


def test_different_seeds_differ():
    a = run_one(seed=36)
    b = run_one(seed=37)
    assert a.features != b.features


def test_meta_carries_ground_truth():
    record = run_one()
    for key in ("video_id", "bitrate_bps", "wan_profile", "true_cpu", "true_rssi"):
        assert key in record.meta


def test_record_labels_consistent():
    record = run_one()
    assert record.severity_label == record.severity
    if record.severity == "good":
        assert record.exact_label == "good"
        assert record.location_label == "good"

"""Tests for campaign generation (uses the shared session fixture)."""

import pytest

from repro.faults.base import FAULT_NAMES
from repro.testbed.campaign import CampaignConfig, iter_campaign, run_campaign
from repro.testbed.realworld import (
    RealWorldConfig,
    WildConfig,
    run_realworld_campaign,
    run_wild_campaign,
)


def test_campaign_count_and_metadata(mini_campaign_records):
    records = mini_campaign_records
    assert len(records) == 28
    for i, record in enumerate(records):
        assert record.meta["instance_index"] == i
        assert "instance_seed" in record.meta


def test_campaign_has_healthy_and_faulty(mini_campaign_records):
    names = {r.fault_name for r in mini_campaign_records}
    assert "none" in names
    assert len(names - {"none"}) >= 3


def test_campaign_labels_are_valid(mini_campaign_records):
    for record in mini_campaign_records:
        assert record.severity in ("good", "mild", "severe")
        if record.exact_label != "good":
            fault, severity = record.exact_label.rsplit("_", 1)
            assert fault in FAULT_NAMES
            assert severity in ("mild", "severe")


def test_campaign_reproducible_prefix():
    config = CampaignConfig(n_instances=2, seed=77,
                            video_duration_range=(10.0, 14.0))
    a = run_campaign(config)
    b = run_campaign(config)
    assert [r.features for r in a] == [r.features for r in b]


def test_iter_campaign_is_lazy():
    config = CampaignConfig(n_instances=1000, seed=78,
                            video_duration_range=(10.0, 12.0))
    iterator = iter_campaign(config)
    first = next(iterator)
    assert first.meta["instance_index"] == 0


def test_progress_callback_invoked():
    seen = []
    config = CampaignConfig(n_instances=2, seed=79,
                            video_duration_range=(10.0, 12.0))
    run_campaign(config, progress=lambda i, r: seen.append(i))
    assert seen == [0, 1]


@pytest.mark.slow
def test_realworld_campaign_smoke():
    records = run_realworld_campaign(
        RealWorldConfig(n_instances=3, seed=80, video_duration_range=(10.0, 12.0))
    )
    assert len(records) == 3
    assert all(r.meta["environment"] == "realworld-induced" for r in records)
    assert {r.meta["service"] for r in records} <= {"youtube", "private"}


@pytest.mark.slow
def test_wild_campaign_router_vp_blanked_on_cellular():
    records = run_wild_campaign(
        WildConfig(n_instances=6, seed=81, cellular_fraction=1.0,
                   video_duration_range=(10.0, 12.0))
    )
    for record in records:
        assert record.meta["network"] == "3g"
        assert record.meta["router_vp_available"] is False
        router_features = [v for k, v in record.features.items()
                          if k.startswith("router_")]
        assert all(v == 0.0 for v in router_features)


@pytest.mark.slow
def test_wild_campaign_wifi_keeps_router_vp():
    records = run_wild_campaign(
        WildConfig(n_instances=4, seed=82, cellular_fraction=0.0,
                   video_duration_range=(10.0, 12.0))
    )
    assert any(
        any(v != 0.0 for k, v in r.features.items() if k.startswith("router_"))
        for r in records
    )

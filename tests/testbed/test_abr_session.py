"""Integration tests for ABR sessions on the full testbed."""

import random

import pytest

from repro.faults import make_fault
from repro.testbed.testbed import Testbed, TestbedConfig
from repro.video.catalog import VideoCatalog

CATALOG = VideoCatalog(size=10, duration_range=(12.0, 18.0), seed=5)
HD = next(v for v in CATALOG if v.definition == "HD")


def run_abr(seed=61, fault=None):
    bed = Testbed(TestbedConfig(seed=seed))
    record = bed.run_abr_session(HD, fault=fault)
    bed.shutdown()
    return record


def test_abr_session_healthy():
    record = run_abr()
    assert record.severity == "good"
    assert record.meta["server_mode"] == "abr"
    assert record.app_metrics["abr_segments"] >= 2
    assert record.app_metrics["abr_avg_bitrate"] > 0


def test_abr_record_has_full_feature_namespace():
    record = run_abr()
    prefixes = {name.split("_", 1)[0] for name in record.features}
    assert prefixes == {"mobile", "router", "server"}
    assert record.features["mobile_tcp_s2c_data_bytes"] > 0


def test_abr_adapts_under_wan_shaping():
    fault = make_fault("wan_shaping", "severe", random.Random(3))
    record = run_abr(seed=62, fault=fault)
    healthy = run_abr(seed=62)
    # The controller steps down: shaped sessions deliver lower bitrate.
    assert (
        record.app_metrics["abr_avg_bitrate"]
        < healthy.app_metrics["abr_avg_bitrate"]
    )


def test_lab_model_diagnoses_abr_sessions(mini_dataset):
    """Delivery agnosticism: the progressive-trained analyzer still reads
    ABR sessions (Section 2's requirement)."""
    from repro.core.diagnosis import RootCauseAnalyzer

    analyzer = RootCauseAnalyzer(vps=("mobile",)).fit(mini_dataset)
    record = run_abr(seed=63)
    report = analyzer.diagnose(record)
    assert report.severity in ("good", "mild", "severe")

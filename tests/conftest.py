"""Shared fixtures.

The expensive fixture is a small controlled campaign dataset; it is
session-scoped and cached on disk via the experiments cache, so the suite
pays for it once.
"""

from __future__ import annotations

import pytest

from repro.core.dataset import Dataset
from repro.testbed.campaign import CampaignConfig, run_campaign
from repro.testbed.testbed import Testbed, TestbedConfig


@pytest.fixture(scope="session")
def mini_campaign_records():
    """A tiny but label-diverse campaign shared across the test session."""
    config = CampaignConfig(
        n_instances=28,
        seed=99,
        healthy_fraction=0.35,
        video_duration_range=(12.0, 20.0),
    )
    return run_campaign(config)


@pytest.fixture(scope="session")
def mini_dataset(mini_campaign_records) -> Dataset:
    return Dataset.from_records(mini_campaign_records)


@pytest.fixture()
def testbed() -> Testbed:
    return Testbed(TestbedConfig(seed=7))

"""Smoke/contract tests for the experiment drivers on a mini dataset.

The accuracy *values* are exercised by the benchmarks on full-size
datasets; here we verify that every driver runs, returns the documented
structure and renders its table.
"""

import pytest

from repro.experiments.classifiers import run_classifier_comparison
from repro.experiments.detection import run_detection
from repro.experiments.exact import feature_ranking_table, run_exact
from repro.experiments.feature_sets import run_fc_fs_ablation, run_feature_sets
from repro.experiments.location import run_location
from repro.experiments.selection_table import run_selection
from repro.experiments.realworld import run_realworld_detection
from repro.experiments.wild import (
    run_server_inference,
    run_wild_detection,
    run_wild_rca,
)

COMBOS = (("mobile",), ("mobile", "router", "server"))


def test_detection_driver(mini_dataset):
    result = run_detection(mini_dataset, combos=COMBOS, k=4)
    assert set(result.accuracies) == {"mobile", "combined"}
    assert all(0 <= a <= 1 for a in result.accuracies.values())
    text = result.to_text()
    assert "accuracy" in text and "good" in text


def test_location_driver(mini_dataset):
    result = run_location(mini_dataset, combos=COMBOS, k=4)
    assert "mobile" in result.accuracies
    assert set(result.lan_rankings) == {"router", "server"}
    assert "Section 5.2" in result.to_text()


def test_exact_driver(mini_dataset):
    result = run_exact(mini_dataset, combos=COMBOS, k=4, with_feature_table=False)
    assert result.feature_table == {}
    assert "Figure 4" in result.to_text()


def test_feature_ranking_table(mini_dataset):
    table = feature_ranking_table(mini_dataset, top_k=2)
    assert set(table)  # at least one problem type present
    for per_vp in table.values():
        assert set(per_vp) == {"mobile", "router", "server", "combined"}
        for vp, ranked in per_vp.items():
            assert len(ranked) <= 2
            scope = vp if vp != "combined" else ""
            for name, gain in ranked:
                assert gain >= 0
                if scope:
                    assert name.startswith(scope)


def test_feature_sets_driver(mini_dataset):
    result = run_feature_sets(mini_dataset, k=4)
    acc = result.accuracies
    assert "fs_fc" in acc and "all" in acc and "delay" in acc
    series = result.series()
    assert series[-1][0] == "fs_fc"
    assert "Figure 5" in result.to_text()


def test_fc_fs_ablation_driver(mini_dataset):
    result = run_fc_fs_ablation(mini_dataset, k=4)
    assert set(result.accuracies) == {"raw", "fc_only", "fs_only", "fc_fs"}


def test_selection_driver(mini_dataset):
    result = run_selection(mini_dataset)
    assert result.n_before >= result.n_after >= 0
    assert isinstance(result.category_counts(), dict)
    assert "Table 1" in result.to_text()


def test_classifier_comparison_driver(mini_dataset):
    result = run_classifier_comparison(mini_dataset, k=4)
    assert set(result.accuracies) == {"c45", "nb", "svm"}
    assert result.winner in result.accuracies


def test_realworld_transfer_driver(mini_dataset):
    result = run_realworld_detection(mini_dataset, mini_dataset, combos=COMBOS)
    # train == test -> near-perfect: validates the frozen-pipeline plumbing
    assert result.accuracies["combined"] > 0.85
    assert "Real-world transfer" in result.to_text()


def test_wild_detection_driver(mini_dataset):
    result = run_wild_detection(mini_dataset, mini_dataset)
    assert set(result.accuracies) == {"mobile", "server", "mobile+server"}
    assert "Figure 8" in result.to_text()


def test_wild_rca_driver(mini_dataset):
    result = run_wild_rca(mini_dataset, mini_dataset)
    assert result.n_sessions == len(mini_dataset)
    assert "Table 5" in result.to_text()
    total = sum(sum(row.values()) for row in result.counts.values())
    assert total == result.n_sessions


def test_server_inference_driver(mini_dataset):
    result = run_server_inference(mini_dataset, mini_dataset)
    n = len(result.cpu_flagged) + len(result.cpu_unflagged)
    assert n == len(mini_dataset)
    assert "Figure 9" in result.to_text()


def test_vp_pairs_driver(mini_dataset):
    from repro.experiments.vp_pairs import run_vp_pairs

    result = run_vp_pairs(mini_dataset, k=4)
    assert len(result.accuracies) == 7
    gains = dict(result.pair_gains())
    assert set(gains) == {"mobile+router", "mobile+server", "router+server"}
    assert "Section 5.2" in result.to_text()

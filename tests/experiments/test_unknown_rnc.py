"""Driver tests for the unknown-fault and RNC-extension experiments."""

import pytest

from repro.experiments.rnc import run_rnc_extension
from repro.experiments.unknown_faults import run_unknown_faults
from repro.testbed.cellular import run_cellular_campaign


@pytest.mark.slow
def test_unknown_faults_driver(mini_dataset):
    result = run_unknown_faults(mini_dataset, n_sessions=4, seed=5)
    assert result.n_sessions == 4
    assert len(result.sessions) == 4
    for fault_name, severity, mos, predicted in result.sessions:
        assert fault_name in ("dns_misconfiguration", "middlebox_interference")
        assert 1.0 <= mos <= 4.23
        # predictions stay inside the trained vocabulary
        assert "dns" not in predicted and "middlebox" not in predicted
    assert "limitation" in result.to_text()


@pytest.mark.slow
def test_rnc_extension_driver():
    from repro.core.dataset import Dataset

    records = run_cellular_campaign(n_instances=30, seed=91,
                                    healthy_fraction=0.4)
    dataset = Dataset.from_records(records)
    result = run_rnc_extension(dataset, k=3)
    assert set(result.accuracies) == {
        "mobile", "server", "rnc", "mobile+server", "mobile+server+rnc"
    }
    assert all(0.0 <= a <= 1.0 for a in result.accuracies.values())
    assert "RNC vantage point" in result.to_text()

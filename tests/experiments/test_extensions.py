"""Tests for the extension experiments (continuous training, multi-fault,
delivery transfer)."""

import pytest

from repro.experiments.extensions import (
    run_continuous_training,
    run_delivery_transfer,
    run_multi_fault,
)


def test_continuous_training_driver(mini_dataset):
    result = run_continuous_training(
        mini_dataset, mini_dataset, fractions=(0.0, 0.5)
    )
    assert result.fractions == [0.0, 0.5]
    assert all(0.0 <= a <= 1.0 for a in result.accuracies)
    assert "Continuous training" in result.to_text()


@pytest.mark.slow
def test_multi_fault_driver(mini_dataset):
    result = run_multi_fault(mini_dataset, n_sessions=3, seed=5)
    assert result.n_sessions == 3
    assert 0.0 <= result.component_recall <= 1.0
    assert 0.0 <= result.detection_rate <= 1.0
    assert len(result.pairs) == 3
    assert "co-occurrence" in result.to_text()


def test_delivery_transfer_driver(mini_dataset):
    result = run_delivery_transfer(mini_dataset, mini_dataset)
    # same dataset on both sides: cross == train-on-self, high accuracy
    assert result.accuracy_cross > 0.8
    assert "agnosticism" in result.to_text()

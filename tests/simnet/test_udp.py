"""Unit tests for UDP senders and sinks."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.udp import UdpSender, UdpSink


def build():
    sim = Simulator(seed=0)
    a = Host(sim, "a")
    b = Host(sim, "b")
    wire(sim, a, "eth0", b, "eth0",
         Channel(sim, "f", 1e9, queue_limit_bytes=10**9),
         Channel(sim, "b", 1e9, queue_limit_bytes=10**9))
    a.set_default_route(a.interfaces["eth0"])
    b.set_default_route(b.interfaces["eth0"])
    return sim, a, b


def test_cbr_rate_accuracy():
    sim, a, b = build()
    sink = UdpSink(b, 5001)
    sender = UdpSender(sim, a, "b", 5001, rate_bps=1e6, payload=1000,
                       jitter_factor=0.0)
    sender.start()
    sim.run(until=10.0)
    sender.stop()
    payload_rate = sink.pkts_received * 1000 * 8 / 10.0
    assert payload_rate == pytest.approx(1e6, rel=0.05)


def test_stop_halts_emission():
    sim, a, b = build()
    sink = UdpSink(b, 5001)
    sender = UdpSender(sim, a, "b", 5001, rate_bps=1e6)
    sender.start()
    sim.run(until=1.0)
    sender.stop()
    count = sink.pkts_received
    sim.run(until=5.0)
    assert sink.pkts_received <= count + 1  # at most one in-flight packet


def test_set_rate_changes_pace():
    sim, a, b = build()
    sink = UdpSink(b, 5001)
    sender = UdpSender(sim, a, "b", 5001, rate_bps=1e6, payload=1000,
                       jitter_factor=0.0)
    sender.start()
    sim.run(until=2.0)
    low = sink.pkts_received
    sender.set_rate(4e6)
    sim.run(until=4.0)
    high = sink.pkts_received - low
    assert high > low * 2


def test_on_off_pattern_reduces_volume():
    sim, a, b = build()
    sink_cbr = UdpSink(b, 5001)
    sink_onoff = UdpSink(b, 5002)
    UdpSender(sim, a, "b", 5001, rate_bps=1e6, jitter_factor=0.0).start()
    onoff = UdpSender(sim, a, "b", 5002, rate_bps=1e6, jitter_factor=0.0,
                      on_time=1.0, off_time=2.0)
    onoff.start()
    sim.run(until=30.0)
    assert sink_onoff.pkts_received < sink_cbr.pkts_received


def test_invalid_rate_rejected():
    sim, a, b = build()
    with pytest.raises(ValueError):
        UdpSender(sim, a, "b", 5001, rate_bps=0)
    sender = UdpSender(sim, a, "b", 5001, rate_bps=1e6)
    with pytest.raises(ValueError):
        sender.set_rate(-1)


def test_sink_counts_bytes_and_callback():
    sim, a, b = build()
    got = []
    sink = UdpSink(b, 5001, on_packet=got.append)
    sender = UdpSender(sim, a, "b", 5001, rate_bps=1e6, payload=500)
    sender.start()
    sim.run(until=0.5)
    sender.stop()
    assert sink.pkts_received == len(got) > 0
    assert sink.bytes_received == sum(p.size for p in got)


def test_sink_close_unbinds():
    sim, a, b = build()
    sink = UdpSink(b, 5001)
    sink.close()
    b.bind(17, 5001, lambda p: None)  # port free again

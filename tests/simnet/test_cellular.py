"""Unit tests for the cellular access model."""

import pytest

from repro.simnet.cellular import (
    CQI_TABLE,
    CellularCell,
    HANDOVER_RSCP,
    block_error_prob,
    cqi_for_rscp,
)
from repro.simnet.engine import Simulator
from repro.simnet.node import Host
from repro.simnet.packet import Packet, UDP


def build(rscp=-80.0, load=0.0, seed=0):
    sim = Simulator(seed=seed)
    rnc = Host(sim, "rnc")
    phone = Host(sim, "phone")
    cell = CellularCell(sim, background_load=load)
    cell.attach_rnc(rnc.add_interface("cell0"))
    ue = cell.add_ue("phone", phone.add_interface("cell0"), base_rscp=rscp)
    ue.shadow_sigma = 0.0
    rnc.add_route("phone", rnc.interfaces["cell0"])
    phone.set_default_route(phone.interfaces["cell0"])
    return sim, rnc, phone, cell, ue


def make_pkt(src, dst, payload=1200):
    return Packet(src=src, dst=dst, sport=1, dport=9, proto=UDP,
                  payload_len=payload)


def test_cqi_mapping_monotone():
    shares = [cqi_for_rscp(r)[1] for r in range(-120, -70, 5)]
    assert shares == sorted(shares)
    assert cqi_for_rscp(-75.0)[1] == CQI_TABLE[-1][2]


def test_bler_increases_as_signal_fades():
    assert block_error_prob(-80.0) < block_error_prob(-105.0) < block_error_prob(-115.0)


def test_downlink_delivery():
    sim, rnc, phone, cell, ue = build()
    got = []
    phone.bind(UDP, 9, got.append)
    for _ in range(50):
        rnc.send(make_pkt("rnc", "phone"))
    sim.run(until=10.0)
    assert len(got) == 50
    assert ue.pdus_tx == 50


def test_uplink_delivery():
    sim, rnc, phone, cell, ue = build()
    got = []
    rnc.bind(UDP, 9, got.append)
    for _ in range(20):
        phone.send(make_pkt("phone", "rnc"))
    sim.run(until=5.0)
    assert len(got) == 20


def test_weak_signal_slows_downlink():
    done = {}
    for rscp in (-80.0, -107.0):
        sim, rnc, phone, cell, ue = build(rscp=rscp, seed=3)
        times = []
        phone.bind(UDP, 9, lambda p: times.append(sim.now))
        for _ in range(100):
            rnc.send(make_pkt("rnc", "phone"))
        sim.run(until=60.0)
        done[rscp] = times[-1]
    assert done[-107.0] > done[-80.0] * 2


def test_cell_load_squeezes_rate():
    sim, rnc, phone, cell, ue = build(load=0.0)
    fast = ue.current_rate(0.0)
    cell.set_background_load(0.9)
    slow = ue.current_rate(0.0)
    assert slow < fast / 3


def test_handover_on_signal_collapse():
    sim, rnc, phone, cell, ue = build(rscp=HANDOVER_RSCP - 5.0, seed=4)
    got = []
    phone.bind(UDP, 9, got.append)
    rnc.send(make_pkt("rnc", "phone"))
    sim.run(until=10.0)
    assert ue.handovers >= 1
    # After the handover the new cell serves the queued packet.
    assert len(got) == 1
    assert ue.base_rscp > HANDOVER_RSCP


def test_queue_limit():
    sim, rnc, phone, cell, ue = build(rscp=-107.0)
    ue.queue_limit_bytes = 4000
    accepted = [cell.send_downlink(ue, make_pkt("rnc", "phone")) for _ in range(20)]
    assert accepted.count(False) > 0
    assert ue.queue_drops == accepted.count(False)


def test_duplicate_ue_rejected():
    sim, rnc, phone, cell, ue = build()
    with pytest.raises(ValueError):
        cell.add_ue("phone", phone.interfaces["cell0"])


def test_uplink_requires_rnc():
    sim = Simulator()
    cell = CellularCell(sim)
    phone = Host(sim, "phone")
    ue = cell.add_ue("phone", phone.add_interface("cell0"))
    with pytest.raises(RuntimeError):
        cell.send_uplink(ue, make_pkt("phone", "rnc"))


def test_tcp_over_cellular():
    """End-to-end TCP across cell + core works and delivers exactly."""
    from repro.simnet.link import Channel
    from repro.simnet.node import Router, wire
    from repro.simnet.tcp import TcpServer, open_connection

    sim = Simulator(seed=5)
    server = Host(sim, "server")
    rnc = Router(sim, "rnc")
    phone = Host(sim, "phone")
    wire(sim, server, "eth0", rnc, "wan0",
         Channel(sim, "d", 30e6, delay=0.02), Channel(sim, "u", 30e6, delay=0.02))
    cell = CellularCell(sim)
    cell.attach_rnc(rnc.add_interface("cell0"))
    cell.add_ue("phone", phone.add_interface("cell0"), base_rscp=-85.0)
    server.set_default_route(server.interfaces["eth0"])
    rnc.add_route("server", rnc.interfaces["wan0"])
    rnc.add_route("phone", rnc.interfaces["cell0"])
    phone.set_default_route(phone.interfaces["cell0"])

    state = {"got": 0}

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(400_000), ep.close())

    TcpServer(sim, server, 80, on_conn)
    client = open_connection(sim, phone, "server", 80)
    client.on_established = lambda: client.send(300)
    client.on_data = lambda n, t: state.__setitem__("got", state["got"] + n)
    client.connect()
    sim.run(until=120.0)
    assert state["got"] == 400_000

"""BatchedRandom must reproduce ``random.Random`` draw-for-draw.

The campaign datasets are pinned bit-identical across refactors, so the
batched generator is only admissible if every draw -- through any stdlib
distribution, under any interleaving with ``getrandbits`` -- matches the
CPython Mersenne Twister exactly.  These tests pin that contract.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.rng import (
    _BLOCK_MIN,
    BatchedRandom,
    make_random,
    resolve_rng_mode,
)


def test_random_sequence_exact_across_refills():
    ref = random.Random(1234)
    bat = BatchedRandom(1234)
    # 3 * _BLOCK_MAX words' worth of draws crosses several refills.
    for _ in range(20_000):
        assert bat.random() == ref.random()


@pytest.mark.parametrize("k", [1, 5, 31, 32, 33, 64, 65, 100, 128])
def test_getrandbits_exact(k):
    ref = random.Random(99)
    bat = BatchedRandom(99)
    for _ in range(500):
        assert bat.getrandbits(k) == ref.getrandbits(k)


def test_getrandbits_edge_cases():
    assert BatchedRandom(0).getrandbits(0) == random.Random(0).getrandbits(0)
    with pytest.raises(ValueError):
        BatchedRandom(0).getrandbits(-1)


@pytest.mark.parametrize("seed", [0, 7, 2**40, "string-seed", 3.5])
def test_seed_types_match(seed):
    ref = random.Random(seed)
    bat = BatchedRandom(seed)
    assert [bat.random() for _ in range(10)] == [ref.random() for _ in range(10)]


def test_derived_distributions_match():
    """Inherited stdlib methods reduce to the overridden primitives."""
    ref = random.Random(55)
    bat = BatchedRandom(55)
    for _ in range(300):
        assert bat.uniform(0, 10) == ref.uniform(0, 10)
        assert bat.gauss(5.0, 2.0) == ref.gauss(5.0, 2.0)
        assert bat.expovariate(0.5) == ref.expovariate(0.5)
        assert bat.randint(0, 1 << 40) == ref.randint(0, 1 << 40)
        assert bat.choice(range(97)) == ref.choice(range(97))
    items_a = list(range(50))
    items_b = list(range(50))
    bat.shuffle(items_a)
    ref.shuffle(items_b)
    assert items_a == items_b


def test_odd_parity_alignment():
    """getrandbits consumes single words, so random() must stay exact
    from both even and odd buffer positions."""
    ref = random.Random(77)
    bat = BatchedRandom(77)
    for _ in range(2_000):
        assert bat.getrandbits(32) == ref.getrandbits(32)  # odd step
        assert bat.random() == ref.random()
        assert bat.random() == ref.random()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sampled_from(["random", "bits1", "bits33", "gauss", "randrange"]),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=0, max_value=2**31),
)
def test_arbitrary_interleavings_match(ops, seed):
    ref = random.Random(seed)
    bat = BatchedRandom(seed)
    for op in ops:
        if op == "random":
            assert bat.random() == ref.random()
        elif op == "bits1":
            assert bat.getrandbits(1) == ref.getrandbits(1)
        elif op == "bits33":
            assert bat.getrandbits(33) == ref.getrandbits(33)
        elif op == "gauss":
            assert bat.gauss(0.0, 1.0) == ref.gauss(0.0, 1.0)
        else:
            assert bat.randrange(1000) == ref.randrange(1000)


def test_getstate_round_trips_to_stdlib():
    """State captured mid-stream transplants into a plain random.Random."""
    bat = BatchedRandom(31337)
    for _ in range(_BLOCK_MIN + 17):  # land mid-block
        bat.random()
    ref = random.Random()
    ref.setstate(bat.getstate())
    for _ in range(1000):
        assert bat.random() == ref.random()


def test_setstate_from_stdlib():
    ref = random.Random(4242)
    for _ in range(123):
        ref.random()
    bat = BatchedRandom(0)
    bat.setstate(ref.getstate())
    for _ in range(1000):
        assert bat.random() == ref.random()


def test_getstate_setstate_self_round_trip():
    bat = BatchedRandom(9)
    for _ in range(100):
        bat.random()
    state = bat.getstate()
    tail = [bat.random() for _ in range(50)]
    bat.setstate(state)
    assert [bat.random() for _ in range(50)] == tail


# ------------------------------------------------------------- factory


def test_resolve_mode_env(monkeypatch):
    monkeypatch.delenv("REPRO_SIMNET_RNG", raising=False)
    assert resolve_rng_mode() == "batched"
    monkeypatch.setenv("REPRO_SIMNET_RNG", "stdlib")
    assert resolve_rng_mode() == "stdlib"
    assert resolve_rng_mode("batched") == "batched"  # explicit wins
    with pytest.raises(ValueError):
        resolve_rng_mode("xorshift")


def test_make_random_modes_agree():
    a = make_random(5, "batched")
    b = make_random(5, "stdlib")
    assert isinstance(b, random.Random) and not isinstance(b, BatchedRandom)
    assert [a.random() for _ in range(100)] == [b.random() for _ in range(100)]

"""Unit and property tests for the TCP implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.tcp import TcpServer, open_connection


def build(seed=0, rate=10e6, delay=0.01, loss=0.0, loss_burst=1.0, queue=256 * 1024):
    sim = Simulator(seed=seed)
    a = Host(sim, "client")
    b = Host(sim, "server")
    fwd = Channel(sim, "fwd", rate_bps=rate, delay=delay, loss=loss,
                  loss_burst=loss_burst, queue_limit_bytes=queue)
    bwd = Channel(sim, "bwd", rate_bps=rate, delay=delay, loss=loss,
                  loss_burst=loss_burst, queue_limit_bytes=queue)
    wire(sim, a, "eth0", b, "eth0", bwd, fwd)  # bwd: client->server
    a.set_default_route(a.interfaces["eth0"])
    b.set_default_route(b.interfaces["eth0"])
    return sim, a, b


def transfer(sim, client_node, server_node, size, request=400, until=300.0, cc="cubic"):
    state = {"received": 0, "closed": False, "server_ep": None}

    def on_conn(ep):
        state["server_ep"] = ep

        def respond(nbytes, now):
            if not state.get("responded"):
                state["responded"] = True
                ep.send(size)
                ep.close()

        ep.on_data = respond

    server = TcpServer(sim, server_node, 80, on_conn, cc=cc)
    client = open_connection(sim, client_node, server_node.name, 80, cc=cc)
    client.on_established = lambda: client.send(request)

    def on_data(n, t):
        state["received"] += n
        state["t_done"] = t

    client.on_data = on_data
    client.on_close = lambda: state.__setitem__("closed", True)
    client.connect()
    sim.run(until=until)
    state["client"] = client
    return state


def test_handshake_and_small_transfer():
    sim, a, b = build()
    state = transfer(sim, a, b, size=10_000)
    assert state["received"] == 10_000
    assert state["closed"] is True


def test_exact_delivery_large_transfer():
    sim, a, b = build()
    state = transfer(sim, a, b, size=2_000_000)
    assert state["received"] == 2_000_000


def test_delivery_under_heavy_loss():
    """All bytes are delivered exactly once despite 5% bursty loss."""
    sim, a, b = build(seed=7, loss=0.05, loss_burst=3.0)
    state = transfer(sim, a, b, size=400_000, until=600.0)
    assert state["received"] == 400_000
    assert state["server_ep"].stat_retransmits > 0


def test_no_spurious_retransmits_on_clean_link():
    sim, a, b = build()
    state = transfer(sim, a, b, size=1_000_000)
    assert state["server_ep"].stat_retransmits == 0
    assert state["server_ep"].stat_timeouts == 0


def test_rtt_estimate_close_to_path_rtt():
    sim, a, b = build(delay=0.05)
    state = transfer(sim, a, b, size=500_000)
    ep = state["server_ep"]
    assert ep.srtt == pytest.approx(0.1, abs=0.12)  # 2x50ms + queueing


def test_throughput_near_line_rate():
    sim, a, b = build(rate=8e6)
    state = transfer(sim, a, b, size=4_000_000, until=30.0)
    assert state["received"] == 4_000_000
    # delivered well before the 30s cap: effective rate > 50% of line rate
    assert state["t_done"] < 12.0


def test_handshake_failure_reported():
    sim = Simulator()
    a = Host(sim, "client")
    b = Host(sim, "server")
    fwd = Channel(sim, "f", rate_bps=1e6, loss=1.0)  # black hole
    bwd = Channel(sim, "b", rate_bps=1e6, loss=1.0)
    wire(sim, a, "eth0", b, "eth0", fwd, bwd)
    a.set_default_route(a.interfaces["eth0"])
    failures = []
    client = open_connection(sim, a, "server", 80)
    client.on_fail = failures.append
    client.connect()
    sim.run(until=300.0)
    assert failures == ["handshake-timeout"]
    assert client.closed


def test_syn_retry_recovers_from_syn_loss():
    sim, a, b = build(seed=1, loss=0.4, loss_burst=1.0)
    state = transfer(sim, a, b, size=5_000, until=400.0)
    assert state["received"] == 5_000


def test_send_after_close_rejected():
    sim, a, b = build()
    client = open_connection(sim, a, "server", 80)
    client.close()
    with pytest.raises(RuntimeError):
        client.send(10)


def test_negative_send_rejected():
    sim, a, b = build()
    client = open_connection(sim, a, "server", 80)
    with pytest.raises(ValueError):
        client.send(-1)


def test_mss_negotiated_to_minimum():
    sim, a, b = build()
    got = {}

    def on_conn(ep):
        got["ep"] = ep

    TcpServer(sim, b, 80, on_conn, mss=1000)
    client = open_connection(sim, a, "server", 80, mss=1460)
    client.connect()
    sim.run(until=5.0)
    assert got["ep"].mss == 1000
    assert client.mss == 1000


def test_flow_control_small_receiver_window():
    """A tiny advertised window caps throughput (memory-pressure path)."""
    sim, a, b = build(rate=100e6, delay=0.05)
    state = {"received": 0}

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(3_000_000), ep.close()) if n else None

    TcpServer(sim, b, 80, on_conn)
    client = open_connection(sim, a, "server", 80, recv_capacity=16 * 1024)
    client.on_established = lambda: client.send(300)
    client.on_data = lambda n, t: state.__setitem__("received", state["received"] + n)
    client.connect()
    sim.run(until=10.0)
    # rwnd/RTT = 16KB / 0.1s ~= 1.3 Mbit/s -> far from done after 10s
    assert 0 < state["received"] < 3_000_000


def test_abort_frees_port():
    sim, a, b = build()
    client = open_connection(sim, a, "server", 80)
    client.connect()
    sim.run(until=1.0)
    client.abort()
    assert client.closed
    # port is reusable
    a.bind(6, client.local_port, lambda p: None, "server", 80)


@settings(max_examples=10, deadline=None)
@given(
    size=st.integers(min_value=0, max_value=300_000),
    loss=st.sampled_from([0.0, 0.01, 0.03]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_exact_once_delivery(size, loss, seed):
    """Invariant: the receiver reads exactly the bytes sent, once."""
    sim, a, b = build(seed=seed, loss=loss, loss_burst=2.0)
    state = transfer(sim, a, b, size=size, until=900.0)
    assert state["received"] == size
    assert state["closed"] is True

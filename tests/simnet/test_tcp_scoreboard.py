"""Incremental SACK-scoreboard counters vs. a recomputed ground truth.

The sender keeps ``_pipe_bytes`` / ``_sacked_total`` / ``_highest_sacked``
as running counters instead of scanning the segment map per ACK.  This
test audits them against a from-scratch recomputation at every
millisecond of a lossy transfer, including recovery and RTO episodes.
"""

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.tcp import TcpServer, open_connection


def _audit(ep, failures):
    segs = list(ep._segments.values())
    pipe = sum(s.length for s in segs if not s.sacked)
    sacked = sum(s.length for s in segs if s.sacked)
    if ep._pipe_bytes != pipe:
        failures.append(("pipe", ep._pipe_bytes, pipe))
    if ep._sacked_total != sacked:
        failures.append(("sacked", ep._sacked_total, sacked))
    if sacked:
        live_max = max(s.end for s in segs if s.sacked)
        if ep._highest_sacked != live_max:
            failures.append(("highest", ep._highest_sacked, live_max))


def test_incremental_counters_match_recomputation():
    sim = Simulator(seed=11)
    a, b = Host(sim, "a"), Host(sim, "b")
    wire(
        sim, a, "eth0", b, "eth0",
        Channel(sim, "f", 20e6, delay=0.01, jitter=0.002, loss=0.02),
        Channel(sim, "b", 20e6, delay=0.01, loss=0.01),
    )
    a.set_default_route(a.interfaces["eth0"])
    b.set_default_route(b.interfaces["eth0"])
    got = [0]
    eps = []

    def on_conn(ep):
        eps.append(ep)
        ep.on_data = lambda n, t: (ep.send(1_000_000), ep.close())

    TcpServer(sim, b, 80, on_conn)
    client = open_connection(sim, a, "b", 80)
    client.on_established = lambda: client.send(300)
    client.on_data = lambda n, t: got.__setitem__(0, got[0] + n)
    client.connect()

    failures = []

    def audit_tick():
        _audit(client, failures)
        for ep in eps:
            _audit(ep, failures)
        if not client.closed:
            sim.post(0.001, audit_tick)

    sim.post(0.05, audit_tick)
    sim.run(until=120.0)
    assert got[0] == 1_000_000
    assert failures == []

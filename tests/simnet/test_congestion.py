"""Unit tests for the congestion-control modules."""

import pytest

from repro.simnet.congestion import CubicControl, RenoControl, make_control
from repro.simnet.engine import Simulator


class FakeEndpoint:
    def __init__(self, cwnd=14600, mss=1460, srtt=0.05):
        self.sim = Simulator()
        self.cwnd = cwnd
        self.mss = mss
        self.srtt = srtt
        self.flight_size = cwnd

    def pipe_size(self):
        return self.flight_size


def test_factory():
    assert isinstance(make_control("reno"), RenoControl)
    assert isinstance(make_control("cubic"), CubicControl)
    with pytest.raises(ValueError):
        make_control("bbr")


def test_reno_halves_on_loss():
    ep = FakeEndpoint(cwnd=20000)
    cc = RenoControl()
    assert cc.on_loss(ep) == 10000


def test_reno_loss_floor_two_mss():
    ep = FakeEndpoint(cwnd=1000, mss=1460)
    ep.flight_size = 1000
    cc = RenoControl()
    assert cc.on_loss(ep) == 2 * 1460


def test_reno_linear_growth():
    ep = FakeEndpoint(cwnd=14600)
    cc = RenoControl()
    before = ep.cwnd
    for _ in range(10):  # one cwnd's worth of ACKs
        cc.on_ack(ep, 1460)
    assert ep.cwnd == pytest.approx(before + 1460, rel=0.05)


def test_cubic_backoff_factor():
    ep = FakeEndpoint(cwnd=100_000)
    cc = CubicControl()
    assert cc.on_loss(ep) == int(100_000 * 0.7)


def test_cubic_grows_toward_wmax():
    ep = FakeEndpoint(cwnd=100_000)
    cc = CubicControl()
    ep.cwnd = cc.on_loss(ep)
    # Simulate 2 seconds of ACK clocking.
    for _ in range(200):
        ep.sim.run(until=ep.sim.now + 0.01)
        cc.on_ack(ep, 1460)
    assert ep.cwnd > 90_000  # recovered close to the previous maximum


def test_cubic_fast_convergence_lowers_wmax():
    ep = FakeEndpoint(cwnd=100_000)
    cc = CubicControl()
    cc.on_loss(ep)
    first_wmax = cc.w_max
    ep.cwnd = 50_000  # second loss before regaining the peak
    cc.on_loss(ep)
    assert cc.w_max < first_wmax


def test_cubic_timeout_resets_epoch():
    ep = FakeEndpoint(cwnd=50_000)
    cc = CubicControl()
    ssthresh = cc.on_timeout(ep)
    assert ssthresh == int(50_000 * 0.7)
    assert cc.epoch_start is None

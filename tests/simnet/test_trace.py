"""Tests for packet traces and offline probe analysis."""

import pytest

from repro.probes.tstat import TstatProbe
from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.tcp import TcpServer, open_connection
from repro.simnet.trace import PacketTrace, TraceRecorder


def run_capture(loss=0.02, size=150_000, seed=3):
    sim = Simulator(seed=seed)
    client = Host(sim, "client")
    server = Host(sim, "server")
    wire(sim, client, "eth0", server, "eth0",
         Channel(sim, "up", 20e6, delay=0.02),
         Channel(sim, "down", 20e6, delay=0.02, loss=loss, loss_burst=2.0))
    client.set_default_route(client.interfaces["eth0"])
    server.set_default_route(server.interfaces["eth0"])

    live_probe = TstatProbe(sim, "live")
    live_probe.attach(client.interfaces["eth0"])
    recorder = TraceRecorder(client.interfaces["eth0"])

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(size), ep.close())

    TcpServer(sim, server, 80, on_conn)
    cl = open_connection(sim, client, "server", 80)
    cl.on_established = lambda: cl.send(300)
    cl.on_data = lambda n, t: None
    cl.connect()
    sim.run(until=120.0)
    return live_probe, recorder.detach(), cl


def test_offline_replay_matches_live_capture():
    live, trace, cl = run_capture()
    offline = TstatProbe(Simulator(), "offline")
    trace.replay_into(offline)
    key = list(live.flows)[0]
    live_metrics = live.metrics_for(key)
    offline_metrics = offline.metrics_for(key)
    assert offline_metrics == pytest.approx(live_metrics)


def test_trace_flow_listing():
    _live, trace, cl = run_capture()
    flows = trace.flows()
    assert len(flows) == 1
    assert {flows[0].src, flows[0].dst} == {"client", "server"}


def test_trace_roundtrip_on_disk(tmp_path):
    _live, trace, _cl = run_capture()
    path = tmp_path / "capture.trace"
    trace.save(path)
    loaded = PacketTrace.load(path)
    assert len(loaded) == len(trace)
    offline_a = TstatProbe(Simulator())
    offline_b = TstatProbe(Simulator())
    trace.replay_into(offline_a)
    loaded.replay_into(offline_b)
    key = trace.flows()[0]
    assert offline_b.metrics_for(key) == pytest.approx(offline_a.metrics_for(key))


def test_trace_load_rejects_garbage(tmp_path):
    import pickle

    path = tmp_path / "junk"
    path.write_bytes(pickle.dumps({"format": "other"}))
    with pytest.raises(ValueError):
        PacketTrace.load(path)


def test_detach_stops_recording():
    sim = Simulator()
    host = Host(sim, "h")
    iface = host.add_interface("eth0")
    recorder = TraceRecorder(iface)
    trace = recorder.detach()
    assert iface.taps == []
    assert len(trace) == 0

"""Unit tests for the 802.11 medium model."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.node import Host, wire
from repro.simnet.packet import Packet, UDP
from repro.simnet.wireless import (
    RATE_TABLE,
    WifiMedium,
    frame_error_prob,
    select_rate,
)


def build(phone_rssi=-45.0, duty=0.0, seed=0):
    sim = Simulator(seed=seed)
    ap = Host(sim, "ap")
    phone = Host(sim, "phone")
    medium = WifiMedium(sim)
    ap_if = ap.add_interface("wlan0")
    ph_if = phone.add_interface("wlan0")
    medium.add_station("ap", ap_if, is_ap=True, base_rssi=-30.0, shadow_sigma=0.0)
    st = medium.add_station("phone", ph_if, base_rssi=phone_rssi)
    st.shadow_sigma = 0.0
    medium.set_interference(duty)
    ap.add_route("phone", ap_if)
    phone.set_default_route(ph_if)
    return sim, ap, phone, medium


def blast(sim, src, dst_name, n=200, payload=1400):
    got = []
    dstport = 9
    for node in (src,):
        pass
    for _ in range(n):
        src.send(Packet(src=src.name, dst=dst_name, sport=1, dport=dstport,
                        proto=UDP, payload_len=payload))
    return got


def test_rate_selection_monotone_in_snr():
    rates = [select_rate(snr) for snr in range(0, 40, 2)]
    assert rates == sorted(rates)
    assert rates[0] == RATE_TABLE[0][1]
    assert rates[-1] == RATE_TABLE[-1][1]


def test_frame_error_decreases_with_snr():
    rate = RATE_TABLE[5][1]
    errors = [frame_error_prob(snr, rate) for snr in (5, 10, 20, 30)]
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] < 0.05


def test_delivery_good_signal():
    sim, ap, phone, medium = build()
    got = []
    phone.bind(UDP, 9, got.append)
    blast(sim, ap, "phone", n=100)
    sim.run(until=5.0)
    assert len(got) == 100
    assert medium.stations["ap"].frames_tx == 100
    assert medium.stations["phone"].frames_rx == 100


def test_low_rssi_lowers_phy_rate_and_throughput():
    results = {}
    for rssi in (-45.0, -88.0):
        sim, ap, phone, medium = build(phone_rssi=rssi, seed=3)
        got = []
        phone.bind(UDP, 9, lambda p: got.append(sim.now))
        blast(sim, ap, "phone", n=300)
        sim.run(until=60.0)
        st = medium.stations["phone"]
        results[rssi] = {
            "done": got[-1] if got else float("inf"),
            "rate": st.mean_phy_rate,
            "retries": medium.stations["ap"].retries,
        }
    assert results[-88.0]["rate"] < results[-45.0]["rate"] / 3
    assert results[-88.0]["done"] > results[-45.0]["done"] * 3
    assert results[-88.0]["retries"] > results[-45.0]["retries"]


def test_interference_slows_without_touching_rssi():
    results = {}
    for duty in (0.0, 0.9):
        sim, ap, phone, medium = build(duty=duty, seed=4)
        got = []
        phone.bind(UDP, 9, lambda p: got.append(sim.now))
        blast(sim, ap, "phone", n=200)
        sim.run(until=60.0)
        st = medium.stations["phone"]
        results[duty] = {
            "done": got[-1],
            "rssi": st.rssi(sim.now),
            "rate": st.mean_phy_rate,
        }
    assert results[0.9]["done"] > results[0.0]["done"] * 2
    # RSSI and PHY rate are unaffected by interference -- the signature
    # that lets only RSSI-equipped VPs distinguish the two faults.
    assert results[0.9]["rssi"] == pytest.approx(results[0.0]["rssi"], abs=3.0)
    assert results[0.9]["rate"] == pytest.approx(results[0.0]["rate"], rel=0.05)


def test_uplink_uses_ap_as_next_hop():
    sim, ap, phone, medium = build()
    got = []
    ap.bind(UDP, 9, got.append)
    phone.send(Packet(src="phone", dst="ap", sport=1, dport=9, proto=UDP,
                      payload_len=100))
    sim.run(until=1.0)
    assert len(got) == 1


def test_queue_limit_drops():
    sim, ap, phone, medium = build(phone_rssi=-89.0)
    st = medium.stations["ap"]
    st.queue_limit_bytes = 5000
    phone.bind(UDP, 9, lambda p: None)
    sent = [ap.send(Packet(src="ap", dst="phone", sport=1, dport=9, proto=UDP,
                           payload_len=1400)) for _ in range(20)]
    assert sent.count(False) > 0
    assert st.queue_drops == sent.count(False)


def test_duplicate_station_rejected():
    sim, ap, phone, medium = build()
    with pytest.raises(ValueError):
        medium.add_station("phone", phone.interfaces["wlan0"])


def test_second_ap_rejected():
    sim, ap, phone, medium = build()
    extra = Host(sim, "x")
    iface = extra.add_interface("wlan0")
    with pytest.raises(ValueError):
        medium.add_station("x", iface, is_ap=True)


def test_disconnection_counted_below_threshold():
    sim, ap, phone, medium = build(phone_rssi=-45.0)
    st = medium.stations["phone"]
    st.rssi(sim.now)
    st.attenuation = 50.0  # plunge below the disconnect threshold
    sim.run(until=1.0)
    st.rssi(sim.now)
    assert st.disconnections == 1


def test_shadowing_varies_rssi_but_tracks_mean():
    sim, ap, phone, medium = build()
    st = medium.stations["phone"]
    st.shadow_sigma = 2.0
    samples = []
    for i in range(200):
        sim.run(until=sim.now + 1.0)
        samples.append(st.rssi(sim.now))
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(-45.0, abs=1.5)
    assert max(samples) - min(samples) > 2.0

"""TCP edge cases: zero-length responses, window recovery, port reuse."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, wire
from repro.simnet.tcp import TcpServer, open_connection


def build(seed=0, rate=10e6, delay=0.01):
    sim = Simulator(seed=seed)
    a = Host(sim, "client")
    b = Host(sim, "server")
    wire(sim, a, "eth0", b, "eth0",
         Channel(sim, "up", rate, delay=delay),
         Channel(sim, "down", rate, delay=delay))
    a.set_default_route(a.interfaces["eth0"])
    b.set_default_route(b.interfaces["eth0"])
    return sim, a, b


def test_zero_byte_response_closes_cleanly():
    sim, a, b = build()
    closed = []

    def on_conn(ep):
        ep.on_data = lambda n, t: ep.close()  # no payload at all

    TcpServer(sim, b, 80, on_conn)
    client = open_connection(sim, a, "server", 80)
    client.on_established = lambda: client.send(100)
    client.on_data = lambda n, t: None
    client.on_close = lambda: closed.append(True)
    client.connect()
    sim.run(until=10.0)
    assert closed == [True]


def test_send_zero_bytes_is_noop():
    sim, a, b = build()
    client = open_connection(sim, a, "server", 80)
    client.send(0)  # before establishment, just queues nothing
    assert client._send_buffer == 0


def test_rwnd_zero_then_reopened():
    """Shrinking the advertised window to minimum stalls, growing resumes."""
    sim, a, b = build(rate=50e6, delay=0.02)
    state = {"got": 0}

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(2_000_000), ep.close())

    TcpServer(sim, b, 80, on_conn)
    client = open_connection(sim, a, "server", 80, recv_capacity=8 * 1024)
    client.on_established = lambda: client.send(200)
    client.on_data = lambda n, t: state.__setitem__("got", state["got"] + n)
    client.connect()
    sim.run(until=3.0)
    throttled = state["got"]
    client.set_recv_capacity(512 * 1024)
    sim.run(until=20.0)
    assert state["got"] == 2_000_000
    assert throttled < 2_000_000  # it really was held back initially


def test_sequential_connections_same_nodes():
    sim, a, b = build()
    totals = []

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(50_000), ep.close())

    TcpServer(sim, b, 80, on_conn)
    for round_index in range(3):
        got = {"n": 0}
        client = open_connection(sim, a, "server", 80)
        client.on_established = lambda c=client: c.send(100)
        client.on_data = lambda n, t, g=got: g.__setitem__("n", g["n"] + n)
        client.connect()
        sim.run(until=sim.now + 20.0)
        totals.append(got["n"])
    assert totals == [50_000, 50_000, 50_000]


def test_concurrent_connections_one_server():
    sim, a, b = build(rate=50e6)

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(100_000), ep.close())

    TcpServer(sim, b, 80, on_conn)
    states = []
    for _ in range(5):
        got = {"n": 0}
        client = open_connection(sim, a, "server", 80)
        client.on_established = (lambda c: lambda: c.send(100))(client)
        client.on_data = (lambda g: lambda n, t: g.__setitem__("n", g["n"] + n))(got)
        client.connect()
        states.append(got)
    sim.run(until=30.0)
    assert all(s["n"] == 100_000 for s in states)


def test_close_twice_is_idempotent():
    sim, a, b = build()
    client = open_connection(sim, a, "server", 80)
    client.close()
    client.close()  # no error


def test_abort_before_connect():
    sim, a, b = build()
    client = open_connection(sim, a, "server", 80)
    client.abort()
    assert client.closed

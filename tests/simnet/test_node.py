"""Unit tests for nodes, interfaces, taps and the router bridge."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, Router, Tap, wire
from repro.simnet.packet import Packet, UDP


def build_pair(seed=0, router=False):
    sim = Simulator(seed=seed)
    a = Host(sim, "a")
    b = Router(sim, "b") if router else Host(sim, "b")
    fwd = Channel(sim, "fwd", rate_bps=1e8)
    bwd = Channel(sim, "bwd", rate_bps=1e8)
    wire(sim, a, "eth0", b, "eth0", fwd, bwd)
    a.set_default_route(a.interfaces["eth0"])
    b.set_default_route(b.interfaces["eth0"])
    return sim, a, b


def make_pkt(src, dst, dport=9):
    return Packet(src=src, dst=dst, sport=1000, dport=dport, proto=UDP, payload_len=10)


def test_local_delivery_to_bound_handler():
    sim, a, b = build_pair()
    got = []
    b.bind(UDP, 9, got.append)
    a.send(make_pkt("a", "b"))
    sim.run()
    assert len(got) == 1


def test_unbound_port_discards_silently():
    sim, a, b = build_pair()
    a.send(make_pkt("a", "b", dport=12345))
    sim.run()  # no exception


def test_specific_binding_beats_wildcard():
    sim, a, b = build_pair()
    hits = []
    b.bind(UDP, 9, lambda p: hits.append("wild"))
    b.bind(UDP, 9, lambda p: hits.append("exact"), peer="a", peer_port=1000)
    a.send(make_pkt("a", "b"))
    sim.run()
    assert hits == ["exact"]


def test_duplicate_bind_rejected():
    sim, a, b = build_pair()
    b.bind(UDP, 9, lambda p: None)
    with pytest.raises(ValueError):
        b.bind(UDP, 9, lambda p: None)


def test_unbind_allows_rebinding():
    sim, a, b = build_pair()
    b.bind(UDP, 9, lambda p: None)
    b.unbind(UDP, 9)
    b.bind(UDP, 9, lambda p: None)


def test_ephemeral_ports_unique():
    sim, a, b = build_pair()
    ports = set()
    for _ in range(50):
        port = a.ephemeral_port()
        a.bind(UDP, port, lambda p: None)
        ports.add(port)
    assert len(ports) == 50
    assert all(32768 <= p <= 60999 for p in ports)


def test_router_forwards_between_interfaces():
    sim = Simulator()
    a = Host(sim, "a")
    r = Router(sim, "r")
    c = Host(sim, "c")
    wire(sim, a, "eth0", r, "p1", Channel(sim, "1f", 1e8), Channel(sim, "1b", 1e8))
    wire(sim, r, "p2", c, "eth0", Channel(sim, "2f", 1e8), Channel(sim, "2b", 1e8))
    a.set_default_route(a.interfaces["eth0"])
    c.set_default_route(c.interfaces["eth0"])
    r.add_route("a", r.interfaces["p1"])
    r.add_route("c", r.interfaces["p2"])
    got = []
    c.bind(UDP, 9, got.append)
    a.send(make_pkt("a", "c"))
    sim.run()
    assert len(got) == 1
    assert r.pkts_forwarded == 1


def test_router_bridge_caps_throughput():
    """A slow bridge serialises transit traffic (LAN-shaping fault path)."""
    sim = Simulator()
    a = Host(sim, "a")
    r = Router(sim, "r", bridge_rate_bps=8e3)  # 1 kB/s
    c = Host(sim, "c")
    wire(sim, a, "eth0", r, "p1", Channel(sim, "1f", 1e8), Channel(sim, "1b", 1e8))
    wire(sim, r, "p2", c, "eth0", Channel(sim, "2f", 1e8), Channel(sim, "2b", 1e8))
    a.set_default_route(a.interfaces["eth0"])
    r.add_route("c", r.interfaces["p2"])
    times = []
    c.bind(UDP, 9, lambda p: times.append(sim.now))
    for _ in range(3):
        a.send(Packet(src="a", dst="c", sport=1, dport=9, proto=UDP, payload_len=972))
    sim.run()
    assert len(times) == 3
    # ~1s of bridge serialization per 1000B packet
    assert times[1] - times[0] == pytest.approx(1.0, rel=0.05)


def test_ttl_expiry_drops_packet():
    sim, a, b = build_pair(router=True)
    got = []
    b.bind(UDP, 9, got.append)
    pkt = make_pkt("a", "nonexistent")
    pkt.ttl = 1
    a.send(pkt)
    sim.run()
    assert got == []


def test_no_route_counted():
    sim = Simulator()
    a = Host(sim, "a")
    assert a.send(make_pkt("a", "b")) is False
    assert a.pkts_no_route == 1


def test_taps_see_both_directions():
    sim, a, b = build_pair()
    seen = []
    a.interfaces["eth0"].add_tap(Tap(lambda p, d, t: seen.append(d)))
    b.bind(UDP, 9, lambda p: b.send(make_pkt("b", "a", dport=7)))
    a.bind(UDP, 7, lambda p: None)
    a.send(make_pkt("a", "b"))
    sim.run()
    assert seen == ["tx", "rx"]


def test_interface_counters():
    sim, a, b = build_pair()
    b.bind(UDP, 9, lambda p: None)
    pkt = make_pkt("a", "b")
    a.send(pkt)
    sim.run()
    assert a.interfaces["eth0"].tx_pkts == 1
    assert a.interfaces["eth0"].tx_bytes == pkt.size
    assert b.interfaces["eth0"].rx_pkts == 1


def test_duplicate_interface_rejected():
    sim = Simulator()
    node = Host(sim, "x")
    node.add_interface("eth0")
    with pytest.raises(ValueError):
        node.add_interface("eth0")

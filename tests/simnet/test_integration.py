"""Cross-component physics tests: flows sharing links behave plausibly."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel
from repro.simnet.node import Host, Router, wire
from repro.simnet.tcp import TcpServer, open_connection
from repro.simnet.udp import UdpSender, UdpSink


def build_shared_link(rate=5e6, seed=0):
    sim = Simulator(seed=seed)
    a = Host(sim, "a")
    b = Host(sim, "b")
    wire(sim, a, "eth0", b, "eth0",
         Channel(sim, "f", rate, delay=0.02),
         Channel(sim, "b", rate, delay=0.02))
    a.set_default_route(a.interfaces["eth0"])
    b.set_default_route(b.interfaces["eth0"])
    return sim, a, b


def start_transfer(sim, client, server_node, port, size):
    state = {"got": 0, "t": None}

    def on_conn(ep):
        ep.on_data = lambda n, t: (ep.send(size), ep.close())

    TcpServer(sim, server_node, port, on_conn)
    cl = open_connection(sim, client, server_node.name, port)
    cl.on_established = lambda: cl.send(300)

    def on_data(n, t):
        state["got"] += n
        state["t"] = t

    cl.on_data = on_data
    cl.connect()
    return state


def test_two_tcp_flows_share_roughly_fairly():
    sim, a, b = build_shared_link(rate=5e6, seed=1)
    s1 = start_transfer(sim, a, b, 80, 4_000_000)
    s2 = start_transfer(sim, a, b, 81, 4_000_000)
    sim.run(until=12.0)
    got1, got2 = s1["got"], s2["got"]
    assert got1 > 0 and got2 > 0
    ratio = max(got1, got2) / max(1, min(got1, got2))
    assert ratio < 3.0  # long-term share within 3x


def test_udp_blast_starves_tcp():
    clean = build_shared_link(rate=5e6, seed=2)
    sim, a, b = clean
    state = start_transfer(sim, a, b, 80, 2_000_000)
    sim.run(until=20.0)
    clean_bytes = state["got"]

    sim, a, b = build_shared_link(rate=5e6, seed=2)
    sink = UdpSink(a, 5001)
    blast = UdpSender(sim, b, "a", 5001, rate_bps=6e6, payload=1200)
    blast.start()
    state = start_transfer(sim, a, b, 80, 2_000_000)
    sim.run(until=20.0)
    congested_bytes = state["got"]
    assert congested_bytes < clean_bytes / 2


def test_router_chain_end_to_end_tcp():
    """TCP across two routers (three links) delivers exactly."""
    sim = Simulator(seed=3)
    a = Host(sim, "a")
    r1 = Router(sim, "r1")
    r2 = Router(sim, "r2")
    b = Host(sim, "b")
    wire(sim, a, "e0", r1, "e0", Channel(sim, "1f", 1e7, delay=0.005),
         Channel(sim, "1b", 1e7, delay=0.005))
    wire(sim, r1, "e1", r2, "e0", Channel(sim, "2f", 1e7, delay=0.01),
         Channel(sim, "2b", 1e7, delay=0.01))
    wire(sim, r2, "e1", b, "e0", Channel(sim, "3f", 1e7, delay=0.005),
         Channel(sim, "3b", 1e7, delay=0.005))
    a.set_default_route(a.interfaces["e0"])
    b.set_default_route(b.interfaces["e0"])
    r1.add_route("a", r1.interfaces["e0"])
    r1.add_route("b", r1.interfaces["e1"])
    r1.set_default_route(r1.interfaces["e1"])
    r2.add_route("b", r2.interfaces["e1"])
    r2.add_route("a", r2.interfaces["e0"])
    r2.set_default_route(r2.interfaces["e0"])

    state = start_transfer(sim, a, b, 80, 1_000_000)
    sim.run(until=30.0)
    assert state["got"] == 1_000_000


def test_slow_uplink_limits_download_via_acks():
    """Ack-path starvation (ADSL-style) caps downstream throughput."""
    results = {}
    for up_rate in (1e6, 6e3):
        sim = Simulator(seed=4)
        a = Host(sim, "a")
        b = Host(sim, "b")
        wire(sim, a, "eth0", b, "eth0",
             Channel(sim, "up", up_rate, delay=0.02),
             Channel(sim, "down", 20e6, delay=0.02))
        a.set_default_route(a.interfaces["eth0"])
        b.set_default_route(b.interfaces["eth0"])
        state = start_transfer(sim, a, b, 80, 3_000_000)
        sim.run(until=20.0)
        results[up_rate] = state["got"]
    assert results[6e3] < results[1e6] / 2

"""Unit tests for wired channels: serialization, queueing, loss, shaping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.link import Channel, NetemChannel
from repro.simnet.packet import Packet, UDP


def make_pkt(payload=1000):
    return Packet(src="a", dst="b", sport=1, dport=2, proto=UDP, payload_len=payload)


def collect(sim, channel, n, payload=1000):
    got = []
    channel.connect(lambda pkt: got.append((sim.now, pkt)))
    for _ in range(n):
        channel.send(make_pkt(payload))
    sim.run()
    return got


def test_serialization_delay():
    sim = Simulator()
    ch = Channel(sim, "c", rate_bps=8000.0)  # 1000 B/s
    got = collect(sim, ch, 1, payload=1000 - 28)
    assert got[0][0] == pytest.approx(1.0)


def test_propagation_delay_added():
    sim = Simulator()
    ch = Channel(sim, "c", rate_bps=8e6, delay=0.5)
    got = collect(sim, ch, 1)
    assert got[0][0] == pytest.approx(0.5 + make_pkt().size * 8 / 8e6)


def test_fifo_order_preserved_with_jitter():
    sim = Simulator(seed=2)
    ch = Channel(sim, "c", rate_bps=10e6, delay=0.05, jitter=0.04)
    got = collect(sim, ch, 50)
    ids = [pkt.pkt_id for _, pkt in got]
    assert ids == sorted(ids)
    times = [t for t, _ in got]
    assert times == sorted(times)


def test_queue_limit_tail_drop():
    sim = Simulator()
    ch = Channel(sim, "c", rate_bps=8000.0, queue_limit_bytes=3000)
    ch.connect(lambda pkt: None)
    accepted = [ch.send(make_pkt(972)) for _ in range(10)]
    # ~1000B packets against a 3000B queue: only the first few fit.
    assert accepted.count(True) < 10
    assert ch.pkts_dropped_queue == accepted.count(False)


def test_unconnected_channel_raises():
    sim = Simulator()
    ch = Channel(sim, "c", rate_bps=1e6)
    with pytest.raises(RuntimeError):
        ch.send(make_pkt())


def test_invalid_rate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, "c", rate_bps=0)
    ch = Channel(sim, "c", rate_bps=1e6)
    with pytest.raises(ValueError):
        ch.set_rate(-1)


def test_loss_rate_statistics():
    sim = Simulator(seed=3)
    ch = Channel(sim, "c", rate_bps=1e9, loss=0.3, queue_limit_bytes=10**9)
    got = collect(sim, ch, 2000)
    observed = 1 - len(got) / 2000
    assert 0.25 < observed < 0.35
    assert ch.pkts_dropped_loss == 2000 - len(got)


def test_burst_loss_preserves_average_rate():
    sim = Simulator(seed=4)
    ch = Channel(
        sim, "c", rate_bps=1e9, loss=0.1, loss_burst=4.0, queue_limit_bytes=10**9
    )
    got = collect(sim, ch, 6000)
    observed = 1 - len(got) / 6000
    assert 0.06 < observed < 0.14


def test_burst_loss_clusters_drops():
    """With bursts, consecutive drops appear far more often than i.i.d."""

    def run_lengths(burst):
        sim = Simulator(seed=5)
        ch = Channel(sim, "c", rate_bps=1e9, loss=0.1, loss_burst=burst)
        ch.connect(lambda pkt: None)
        pattern = []
        for _ in range(4000):
            before = ch.pkts_dropped_loss
            ch.send(make_pkt())
            sim.run()
            pattern.append(ch.pkts_dropped_loss > before)
        # count drop pairs
        return sum(1 for a, b in zip(pattern, pattern[1:]) if a and b)

    assert run_lengths(4.0) > run_lengths(1.0) * 2


def test_loss_burst_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, "c", rate_bps=1e6, loss_burst=0.5)


def test_runtime_shaping_changes_throughput():
    sim = Simulator()
    ch = Channel(sim, "c", rate_bps=8e6)
    got = []
    ch.connect(lambda pkt: got.append(sim.now))
    ch.send(make_pkt(1000 - 28))
    sim.run()
    first = got[-1]
    ch.set_rate(8e3)
    ch.send(make_pkt(1000 - 28))
    sim.run()
    assert got[-1] - first == pytest.approx(1.0)


def test_utilization_tracks_busy_time():
    sim = Simulator()
    ch = Channel(sim, "c", rate_bps=8000.0)
    collect(sim, ch, 2, payload=972)  # 2 x 1s of serialization
    assert ch.utilization(horizon=4.0) == pytest.approx(0.5)


def test_netem_presets():
    sim = Simulator()
    dsl = NetemChannel.dsl(sim, "d")
    assert dsl.rate_bps == pytest.approx(7.8e6)
    assert dsl.delay == pytest.approx(0.05)
    mobile = NetemChannel.mobile(sim, "m")
    assert mobile.rate_bps == pytest.approx(5.22e6)
    assert mobile.loss == pytest.approx(0.014)
    with pytest.raises(ValueError):
        NetemChannel(sim, "x", "cable")


def test_netem_overrides():
    sim = Simulator()
    ch = NetemChannel(sim, "d", "dsl", delay=0.01, loss=0.0)
    assert ch.delay == 0.01
    assert ch.loss == 0.0
    assert ch.rate_bps == pytest.approx(7.8e6)


@settings(max_examples=25, deadline=None)
@given(
    rate=st.floats(min_value=1e4, max_value=1e9),
    n=st.integers(min_value=1, max_value=30),
)
def test_conservation_no_loss(rate, n):
    """Without loss and within queue limits, every packet is delivered."""
    sim = Simulator()
    ch = Channel(sim, "c", rate_bps=rate, queue_limit_bytes=10**9)
    got = collect(sim, ch, n)
    assert len(got) == n
    assert ch.pkts_sent == n

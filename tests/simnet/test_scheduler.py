"""Scheduler semantics, pinned against both implementations.

The calendar queue must be observably identical to the reference binary
heap: same firing order (time, then FIFO among equal timestamps, across
both scheduling tiers), same cancellation semantics, and a pending queue
bounded by the live event count even under heavy schedule/cancel churn.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.engine import (
    CalendarScheduler,
    ReferenceScheduler,
    SCHEDULERS,
    Simulator,
    make_scheduler,
)

BOTH = sorted(SCHEDULERS)


@pytest.fixture(params=BOTH)
def scheduler_name(request):
    return request.param


def test_registry_contains_both():
    assert set(SCHEDULERS) == {"calendar", "reference"}
    assert isinstance(make_scheduler("calendar"), CalendarScheduler)
    assert isinstance(make_scheduler("reference"), ReferenceScheduler)
    with pytest.raises(ValueError):
        make_scheduler("nope")


def test_env_selects_scheduler(monkeypatch):
    monkeypatch.setenv("REPRO_SIMNET_SCHEDULER", "reference")
    assert Simulator().scheduler_name == "reference"
    monkeypatch.delenv("REPRO_SIMNET_SCHEDULER")
    assert Simulator().scheduler_name == "calendar"


# ------------------------------------------------------------- ordering


def test_equal_timestamp_fifo_across_tiers(scheduler_name):
    """schedule() and post() share one sequence space: FIFO among ties."""
    sim = Simulator(scheduler=scheduler_name)
    fired = []
    sim.schedule(1.0, fired.append, 0)
    sim.post(1.0, fired.append, 1)
    sim.schedule(1.0, fired.append, 2)
    sim.post(1.0, fired.append, 3)
    sim.run()
    assert fired == [0, 1, 2, 3]


def test_post_fires_in_time_order(scheduler_name):
    sim = Simulator(scheduler=scheduler_name)
    fired = []
    for delay in (2.0, 0.5, 1.5, 0.25):
        sim.post(delay, fired.append, delay)
    sim.run()
    assert fired == sorted(fired)


def test_post_negative_delay_rejected(scheduler_name):
    sim = Simulator(scheduler=scheduler_name)
    with pytest.raises(ValueError):
        sim.post(-0.01, lambda: None)


def test_schedule_at_in_past_raises(scheduler_name):
    sim = Simulator(scheduler=scheduler_name)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_far_horizon_events_fire_in_order(scheduler_name):
    """Events beyond the calendar ring (overflow heap) stay ordered."""
    sim = Simulator(scheduler=scheduler_name)
    fired = []
    # Mix of near (in-ring) and far (seconds out: overflow) timestamps.
    for delay in (5.0, 0.001, 120.0, 0.3, 60.0, 0.002, 600.0):
        sim.post(delay, fired.append, delay)
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == 600.0


def test_run_limit_between_buckets(scheduler_name):
    """run(until) between two events leaves the later one queued."""
    sim = Simulator(scheduler=scheduler_name)
    fired = []
    sim.post(0.1, fired.append, "a")
    sim.post(90.0, fired.append, "b")  # far bucket for the calendar
    sim.run(until=1.0)
    assert fired == ["a"] and sim.now == 1.0
    sim.run(until=100.0)
    assert fired == ["a", "b"]


# ------------------------------------------------------------- cancellation


def test_cancel_during_dispatch_is_safe(scheduler_name):
    """A callback may cancel a later pending event mid-dispatch."""
    sim = Simulator(scheduler=scheduler_name)
    fired = []
    victim = sim.schedule(2.0, fired.append, "victim")
    sim.schedule(1.0, victim.cancel)
    sim.schedule(3.0, fired.append, "after")
    sim.run()
    assert fired == ["after"]
    assert sim.pending() == 0


def test_cancel_same_timestamp_during_dispatch(scheduler_name):
    """Cancelling an event scheduled at the *current* instant is honoured."""
    sim = Simulator(scheduler=scheduler_name)
    fired = []
    victim = sim.schedule(1.0, fired.append, "victim")

    def killer():
        fired.append("killer")
        victim.cancel()

    # Same timestamp, earlier sequence number: runs first.
    sim.scheduler.insert(1.0, -1, _event_for(sim, killer), None, sim)
    sim.run()
    assert fired == ["killer"]


def _event_for(sim, fn):
    from repro.simnet.engine import Event

    event = Event(1.0, -1, fn, ())
    event._queue = sim.scheduler
    return event


def test_mass_cancel_keeps_queue_bounded(scheduler_name):
    """Satellite (a): 10k scheduled-then-cancelled timers must not leak.

    Lazy purging alone would leave every cancelled entry queued until its
    timestamp; the >50%-dead compaction bound keeps the backlog
    proportional to the live count instead.
    """
    sim = Simulator(scheduler=scheduler_name)
    events = [sim.schedule(10.0 + i * 0.001, lambda: None) for i in range(10_000)]
    keep = set(events[::100])  # 100 survivors
    peak = 0
    for event in events:
        if event not in keep:
            event.cancel()
            peak = max(peak, len(sim.scheduler))
    # The queue may lag behind the live count, but never by more than the
    # compaction threshold's factor (plus its small constant floor).
    live = len(keep)
    assert sim.pending() == live
    assert len(sim.scheduler) <= 2 * live + 66
    sim.run()
    assert len(sim.scheduler) == 0
    assert sim.pending() == 0


def test_rearm_churn_stays_bounded(scheduler_name):
    """RTO-style rearming (schedule+cancel per tick) must not accumulate."""
    sim = Simulator(scheduler=scheduler_name)
    state = {"timer": None, "ticks": 0}

    def tick():
        state["ticks"] += 1
        if state["timer"] is not None:
            state["timer"].cancel()
        if state["ticks"] < 5_000:
            state["timer"] = sim.schedule(1.0, lambda: None)
            sim.post(0.01, tick)
        else:
            state["timer"] = None

    sim.post(0.0, tick)
    sim.run(until=80.0)
    assert state["ticks"] == 5_000
    assert len(sim.scheduler) <= 70  # dead entries purged, not accumulated


# ------------------------------------------------------------- pooling


def test_event_objects_are_recycled(scheduler_name):
    sim = Simulator(scheduler=scheduler_name)
    for _ in range(50):
        sim.schedule(0.001, lambda: None)
    sim.run()
    assert len(sim._free_events) > 0
    before = len(sim._free_events)
    sim.schedule(0.001, lambda: None)
    assert len(sim._free_events) == before - 1  # reused, not allocated


# ------------------------------------------------------------- differential


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2.0),
            st.sampled_from(["schedule", "post", "cancel"]),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_calendar_matches_reference(ops):
    """Any mix of schedule/post/cancel fires identically on both."""

    def run(name):
        sim = Simulator(scheduler=name)
        fired = []
        cancellable = []
        for i, (delay, kind) in enumerate(ops):
            if kind == "post":
                sim.post(delay, fired.append, ("p", i, delay))
            else:
                event = sim.schedule(delay, fired.append, ("s", i, delay))
                cancellable.append(event)
                if kind == "cancel" and len(cancellable) >= 2:
                    cancellable[len(cancellable) // 2].cancel()
        sim.run()
        return fired, sim.now, sim.pending()

    assert run("calendar") == run("reference")

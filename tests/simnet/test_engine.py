"""Unit tests for the discrete-event engine."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.simnet.engine import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_run_until_does_not_fire_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append("late"))
    sim.run(until=5.0)
    assert fired == []
    sim.run(until=15.0)
    assert fired == ["late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [5.0]


def test_schedule_during_run():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_stop_halts_processing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_determinism_same_seed():
    def draw(seed):
        sim = Simulator(seed=seed)
        return [sim.uniform(0, 1) for _ in range(10)]

    assert draw(5) == draw(5)
    assert draw(5) != draw(6)


def test_fork_rng_independent_and_reproducible():
    sim_a = Simulator(seed=1)
    sim_b = Simulator(seed=1)
    assert sim_a.fork_rng("x").random() == sim_b.fork_rng("x").random()
    assert sim_a.fork_rng("x").random() != sim_a.fork_rng("y").random()


def test_chance_extremes():
    sim = Simulator()
    assert sim.chance(0.0) is False
    assert sim.chance(1.0) is True
    assert sim.chance(-1.0) is False
    assert sim.chance(2.0) is True


@given(st.floats(min_value=0.0, max_value=10.0), st.floats(min_value=0.0, max_value=2.0))
def test_bounded_normal_respects_bounds(mean, std):
    sim = Simulator(seed=3)
    for _ in range(20):
        value = sim.bounded_normal(mean, std, lo=0.0, hi=20.0)
        assert 0.0 <= value <= 20.0


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
def test_event_order_is_sorted_property(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, fired.append, d)
    sim.run()
    assert fired == sorted(fired)
    assert math.isclose(sim.now, max(delays)) or sim.now == 0.0

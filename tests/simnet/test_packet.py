"""Unit tests for packet primitives."""

from repro.simnet.packet import (
    ACK,
    FIN,
    FlowKey,
    IP_HEADER,
    Packet,
    SYN,
    TCP,
    TCP_HEADER,
    UDP,
    UDP_HEADER,
)


def make(**kw):
    base = dict(src="a", dst="b", sport=1000, dport=80)
    base.update(kw)
    return Packet(**base)


def test_tcp_size_includes_headers():
    pkt = make(proto=TCP, payload_len=100)
    assert pkt.size == IP_HEADER + TCP_HEADER + 100


def test_udp_size_includes_headers():
    pkt = make(proto=UDP, payload_len=100)
    assert pkt.size == IP_HEADER + UDP_HEADER + 100


def test_mss_option_adds_header_bytes():
    plain = make(proto=TCP)
    syn = make(proto=TCP, flags=SYN, mss_opt=1460)
    assert syn.header_len == plain.header_len + 4


def test_sack_blocks_add_header_bytes():
    pkt = make(proto=TCP, flags=ACK, sack=((0, 10), (20, 30)))
    plain = make(proto=TCP, flags=ACK)
    assert pkt.header_len == plain.header_len + 2 + 16


def test_flag_helpers():
    pkt = make(flags=SYN | ACK)
    assert pkt.is_syn and pkt.is_ack and not pkt.is_fin and not pkt.is_rst


def test_pure_ack_detection():
    assert make(flags=ACK).is_pure_ack
    assert not make(flags=ACK, payload_len=1).is_pure_ack
    assert not make(flags=ACK | FIN).is_pure_ack
    assert not make(flags=ACK | SYN).is_pure_ack


def test_packet_ids_unique():
    assert make().pkt_id != make().pkt_id


def test_flow_key_reversed():
    key = FlowKey("a", "b", 1, 2, TCP)
    assert key.reversed() == FlowKey("b", "a", 2, 1, TCP)
    assert key.reversed().reversed() == key


def test_flow_key_canonical_is_direction_independent():
    key = FlowKey("phone", "server", 40000, 80, TCP)
    assert key.canonical() == key.reversed().canonical()


def test_packet_flow_key_matches_fields():
    pkt = make(sport=1234, dport=80)
    assert pkt.flow_key == FlowKey("a", "b", 1234, 80, TCP)

"""Telemetry-usage pass (O501): span context-manager discipline."""

import textwrap

from repro.analysis import lint_paths
from repro.analysis.obs_usage import check_obs_usage

from .test_runner import write_tree


def rules_of(source):
    return [
        f.rule for f in check_obs_usage("mod.py", textwrap.dedent(source))
    ]


class TestO501:
    def test_with_span_is_clean(self):
        source = """
        from repro.obs.telemetry import get_telemetry

        def run():
            tel = get_telemetry()
            with tel.span("outer", kind="x") as sp:
                sp.count("records")
                with tel.span("inner"):
                    pass
        """
        assert rules_of(source) == []

    def test_bare_span_call_flagged(self):
        source = """
        def run(tel):
            span = tel.span("leaked")
            span.count("records")
        """
        assert rules_of(source) == ["O501"]

    def test_span_passed_as_argument_flagged(self):
        source = """
        def run(tel, consume):
            consume(tel.span("leaked"))
        """
        assert rules_of(source) == ["O501"]

    def test_span_in_expression_statement_flagged(self):
        source = """
        def run(tel):
            tel.span("dropped")
        """
        assert rules_of(source) == ["O501"]

    def test_manual_lifecycle_on_with_bound_span_flagged(self):
        source = """
        def run(tel):
            with tel.span("s") as sp:
                sp.start()
                sp.finish()
        """
        assert rules_of(source) == ["O501", "O501"]

    def test_start_on_unrelated_name_is_clean(self):
        source = """
        def run(process):
            process.start()
            process.finish()
        """
        assert rules_of(source) == []

    def test_record_span_is_clean(self):
        source = """
        def run(tel):
            tel.record_span("agg", dur_s=0.5, counts={"n": 3})
        """
        assert rules_of(source) == []

    def test_multi_item_with_is_clean(self):
        source = """
        def run(tel, lock):
            with lock, tel.span("s"):
                pass
        """
        assert rules_of(source) == []


class TestRouting:
    def test_pass_runs_on_every_package(self, tmp_path):
        # not a determinism/pipeline package — O501 must still fire
        write_tree(
            tmp_path, "anywhere/mod.py",
            "def run(tel):\n    span = tel.span('leaked')\n",
        )
        result = lint_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in result.new_findings] == ["O501"]

    def test_allow_comment_silences(self, tmp_path):
        write_tree(
            tmp_path, "anywhere/mod.py",
            "def run(tel):\n"
            "    span = tel.span('x')  # repro: allow[O501]\n",
        )
        result = lint_paths([tmp_path], root=tmp_path)
        assert result.ok
        assert len(result.suppressed) == 1


class TestSelfCheck:
    def test_project_source_has_no_new_o501(self, repo_lint_result):
        assert [
            f for f in repo_lint_result.new_findings if f.rule == "O501"
        ] == []

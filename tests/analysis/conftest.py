"""Shared fixtures: one lint run over the real source tree."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def repo_lint_result():
    """Lint the project's own ``src/repro`` once per test session."""
    return lint_paths(
        [REPO_ROOT / "src" / "repro"],
        root=REPO_ROOT,
        baseline_path=REPO_ROOT / "lint-baseline.json",
    )

"""Pipeline-schema pass (P401): stage fixtures and routing."""

import textwrap

from repro.analysis import lint_paths
from repro.analysis.pipeline_schema import check_pipeline_stages

from .test_runner import write_tree

GOOD = textwrap.dedent(
    """
    from repro.pipeline.stages import Stage

    class Featurize(Stage):
        name = "featurize"
        CONSUMES = ("features", "meta.session_s")
        PRODUCES = ("features", "labels")

        def process(self, stream):
            return stream
    """
)


def rules_of(source):
    return [
        f.rule
        for f in check_pipeline_stages("pipeline/mod.py", textwrap.dedent(source))
    ]


class TestP401:
    def test_well_formed_stage_is_clean(self):
        assert check_pipeline_stages("pipeline/mod.py", GOOD) == []

    def test_missing_consumes_flagged(self):
        source = """
        from repro.pipeline.stages import Stage

        class Bare(Stage):
            name = "bare"
            PRODUCES = ("features",)
        """
        assert rules_of(source) == ["P401"]

    def test_missing_produces_flagged(self):
        source = """
        from repro.pipeline.stages import Stage

        class Bare(Stage):
            name = "bare"
            CONSUMES = ("features",)
        """
        assert rules_of(source) == ["P401"]

    def test_empty_produces_flagged(self):
        source = """
        from repro.pipeline.stages import Sink

        class Silent(Sink):
            name = "silent"
            CONSUMES = ("*",)
            PRODUCES = ()
        """
        assert rules_of(source) == ["P401"]

    def test_empty_consumes_is_legal_for_sources(self):
        source = """
        from repro.pipeline.stages import Source

        class Feed(Source):
            name = "feed"
            CONSUMES = ()
            PRODUCES = ("features",)
        """
        assert rules_of(source) == []

    def test_computed_declaration_flagged(self):
        source = """
        from repro.pipeline.stages import Stage

        FIELDS = ("features",)

        class Dynamic(Stage):
            name = "dynamic"
            CONSUMES = FIELDS
            PRODUCES = ("features",)
        """
        assert rules_of(source) == ["P401"]

    def test_non_string_entry_flagged(self):
        source = """
        from repro.pipeline.stages import Stage

        class Mixed(Stage):
            name = "mixed"
            CONSUMES = ("features", 7)
            PRODUCES = ("features",)
        """
        assert rules_of(source) == ["P401"]

    def test_malformed_field_name_flagged(self):
        source = """
        from repro.pipeline.stages import Stage

        class Typo(Stage):
            name = "typo"
            CONSUMES = ("features", "not a field!")
            PRODUCES = ("features",)
        """
        assert rules_of(source) == ["P401"]

    def test_wildcard_and_dotted_names_are_legal(self):
        source = """
        from repro.pipeline.stages import Sink

        class Probe(Sink):
            name = "probe"
            CONSUMES = ("*",)
            PRODUCES = ("*",)
        """
        assert rules_of(source) == []

    def test_abstract_stage_skipped(self):
        source = """
        from repro.pipeline.stages import Stage

        class Base(Stage):
            name = "abstract"
        """
        assert rules_of(source) == []

    def test_unnamed_subclass_skipped(self):
        source = """
        from repro.pipeline.stages import Stage

        class Mixin(Stage):
            pass
        """
        assert rules_of(source) == []

    def test_non_stage_class_ignored(self):
        source = """
        class Config:
            name = "config"
        """
        assert rules_of(source) == []


class TestRouting:
    BAD_STAGE = textwrap.dedent(
        """
        from repro.pipeline.stages import Stage

        class Undeclared(Stage):
            name = "undeclared"
        """
    )

    def test_pipeline_package_is_linted(self, tmp_path):
        write_tree(tmp_path, "pipeline/mod.py", self.BAD_STAGE)
        result = lint_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in result.new_findings] == ["P401", "P401"]

    def test_other_packages_are_not(self, tmp_path):
        write_tree(tmp_path, "core/mod.py", self.BAD_STAGE)
        assert lint_paths([tmp_path], root=tmp_path).ok

    def test_own_pipeline_package_is_clean(self, repo_lint_result):
        assert not [
            f for f in repo_lint_result.new_findings if f.rule == "P401"
        ]

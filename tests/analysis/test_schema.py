"""Metric-schema pass (M2xx): producers/consumers on fixture sources."""

import textwrap

from repro.analysis.schema import (
    check_schema,
    extract_consumed,
    extract_produced,
    is_produced,
)

PROBE = textwrap.dedent(
    """
    class Probe:
        def stop(self):
            out = {
                "tx_rate": 1.0,
                "data_pkts": 2.0,
            }
            out["flow_duration"] = 3.0
            return out

        def _read(self):
            # not an emission method: keys here are internal state
            return {"scratch_counter": 0.0}
    """
)

CONSUMER = textwrap.dedent(
    """
    _PKT_COUNTERS = ("data_pkts",)
    _RATE_SUFFIXES = ("tx_rate",)

    def construct(features, vp):
        key = f"{vp}_tcp_flow_duration"
        return features.get(key, 0.0)
    """
)


class TestExtraction:
    def test_produced_names_from_emission_methods_only(self):
        names = {ref.name for ref in extract_produced("probes/p.py", PROBE)}
        assert names == {"tx_rate", "data_pkts", "flow_duration"}

    def test_consumed_names_from_constants_and_fstrings(self):
        names = {ref.name for ref in extract_consumed("core/c.py", CONSUMER)}
        assert names == {"data_pkts", "tx_rate", "tcp_flow_duration"}

    def test_constructed_suffix_fragments_ignored(self):
        source = 'def f(name):\n    return f"{name}_norm" + f"{name}_util"\n'
        assert extract_consumed("core/c.py", source) == []


class TestMatching:
    def test_suffix_match_through_prefix_composition(self):
        produced = {"flow_duration", "tx_rate"}
        assert is_produced("tcp_flow_duration", produced)
        assert is_produced("tx_rate_util", produced)
        assert not is_produced("tcp_flow_durations", produced)

    def test_clean_pair_has_no_m201(self):
        findings, namespace = check_schema(
            {"probes/p.py": PROBE}, {"core/c.py": CONSUMER}
        )
        assert [f for f in findings if f.rule == "M201"] == []
        assert namespace["produced"] == {"tx_rate", "data_pkts", "flow_duration"}

    def test_consumed_unproduced_is_error(self):
        bad = CONSUMER.replace('"data_pkts"', '"data_pktz"')
        findings, _ = check_schema({"probes/p.py": PROBE}, {"core/c.py": bad})
        m201 = [f for f in findings if f.rule == "M201"]
        assert len(m201) == 1
        assert "data_pktz" in m201[0].message
        assert m201[0].severity == "error"
        assert m201[0].path == "core/c.py"
        assert m201[0].line > 0

    def test_produced_unconsumed_is_note(self):
        probe = PROBE.replace('"data_pkts": 2.0,',
                              '"data_pkts": 2.0,\n                "orphan_metric": 9.0,')
        findings, _ = check_schema({"probes/p.py": probe}, {"core/c.py": CONSUMER})
        m202 = [f for f in findings if f.rule == "M202"]
        assert any("orphan_metric" in f.message for f in m202)
        assert all(f.severity == "note" for f in m202)
        assert all(not f.gating for f in m202)


class TestRealRepo:
    def test_repo_namespace_is_consistent(self, repo_lint_result):
        m201 = [f for f in repo_lint_result.findings if f.rule == "M201"]
        assert m201 == [], [f.render() for f in m201]

    def test_repo_namespace_nonempty(self, repo_lint_result):
        assert len(repo_lint_result.namespace["produced"]) > 50
        assert "data_pkts" in repo_lint_result.namespace["produced"]
        assert "data_pkts" in repo_lint_result.namespace["consumed"]

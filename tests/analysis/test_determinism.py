"""Determinism pass (D1xx): fixture sources with known violations."""

import textwrap

from repro.analysis.determinism import check_determinism


def rules_of(source):
    findings = check_determinism("simnet/mod.py", textwrap.dedent(source))
    return [f.rule for f in findings]


class TestStdlibRandom:
    def test_module_level_draw_flagged(self):
        assert rules_of(
            """
            import random
            JITTER = random.random()
            """
        ) == ["D101"]

    def test_aliased_import_flagged(self):
        assert rules_of(
            """
            import random as rnd
            x = rnd.uniform(0, 1)
            """
        ) == ["D101"]

    def test_from_import_flagged(self):
        assert rules_of(
            """
            from random import choice
            pick = choice([1, 2, 3])
            """
        ) == ["D101"]

    def test_unseeded_random_instance_flagged(self):
        assert rules_of(
            """
            import random
            rng = random.Random()
            """
        ) == ["D101"]

    def test_system_random_flagged(self):
        assert rules_of(
            """
            import random
            rng = random.SystemRandom()
            """
        ) == ["D101"]

    def test_seeded_instance_ok(self):
        assert rules_of(
            """
            import random
            rng = random.Random(42)
            rng2 = random.Random(f"{42}/label")
            value = rng.uniform(0, 1)
            """
        ) == []

    def test_instance_draws_ok(self):
        # draws on an rng variable are the sanctioned pattern
        assert rules_of(
            """
            def draw(rng):
                return rng.random() + rng.choice([1, 2])
            """
        ) == []

    def test_local_variable_named_random_ok(self):
        # no `import random` in the module: the name is not the module
        assert rules_of(
            """
            def f(random):
                return random.random()
            """
        ) == []


class TestNumpyRandom:
    def test_global_numpy_draw_flagged(self):
        assert rules_of(
            """
            import numpy as np
            noise = np.random.rand(10)
            """
        ) == ["D102"]

    def test_np_random_seed_flagged(self):
        assert rules_of(
            """
            import numpy as np
            np.random.seed(0)
            """
        ) == ["D102"]

    def test_default_rng_seeded_ok(self):
        assert rules_of(
            """
            import numpy as np
            rng = np.random.default_rng(7)
            """
        ) == []

    def test_default_rng_unseeded_flagged(self):
        assert rules_of(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        ) == ["D102"]


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules_of(
            """
            import time
            t0 = time.time()
            """
        ) == ["D103"]

    def test_perf_counter_flagged(self):
        assert rules_of(
            """
            import time
            t0 = time.perf_counter()
            """
        ) == ["D103"]

    def test_datetime_now_flagged(self):
        assert rules_of(
            """
            import datetime
            stamp = datetime.datetime.now()
            """
        ) == ["D103"]

    def test_from_datetime_import_now_flagged(self):
        assert rules_of(
            """
            from datetime import datetime
            stamp = datetime.now()
            """
        ) == ["D103"]

    def test_sim_clock_ok(self):
        assert rules_of(
            """
            def window(sim):
                return sim.now + 1.0
            """
        ) == []


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        assert rules_of(
            """
            def f(items):
                for x in set(items):
                    yield x
            """
        ) == ["D104"]

    def test_comprehension_over_set_literal_flagged(self):
        assert rules_of(
            """
            def f():
                return [x for x in {1, 2, 3}]
            """
        ) == ["D104"]

    def test_list_of_set_flagged(self):
        assert rules_of(
            """
            def f(items):
                for x in list(set(items)):
                    yield x
            """
        ) == ["D104"]

    def test_sorted_set_ok(self):
        assert rules_of(
            """
            def f(items):
                for x in sorted(set(items)):
                    yield x
            """
        ) == []

    def test_membership_ok(self):
        assert rules_of(
            """
            def f(items, known):
                return [x for x in items if x not in set(known)]
            """
        ) == []


class TestFindingShape:
    def test_location_and_rule_id_present(self):
        findings = check_determinism(
            "simnet/engine.py",
            "import time\nt0 = time.time()\n",
        )
        (finding,) = findings
        assert finding.path == "simnet/engine.py"
        assert finding.line == 2
        assert finding.rule == "D103"
        assert "simnet/engine.py:2" in finding.render()
        assert "D103" in finding.render()


class TestSessionIsolation:
    """D105: module-level mutable state in simnet couples sessions."""

    def test_list_literal_flagged(self):
        assert rules_of(
            """
            _pool = []
            """
        ) == ["D105"]

    def test_dict_and_set_literals_flagged(self):
        assert rules_of(
            """
            _by_flow = {}
            _seen = set()
            """
        ) == ["D105", "D105"]

    def test_collections_containers_flagged(self):
        assert rules_of(
            """
            import collections
            _queues = collections.defaultdict(list)
            _ring = collections.deque()
            """
        ) == ["D105", "D105"]

    def test_annotated_assignment_flagged(self):
        assert rules_of(
            """
            from typing import List
            _graveyard: List[int] = []
            """
        ) == ["D105"]

    def test_comprehension_flagged(self):
        assert rules_of(
            """
            _tbl = {i: [] for i in range(4)}
            """
        ) == ["D105"]

    def test_all_caps_constant_exempt(self):
        assert rules_of(
            """
            RATE_TABLE = [1, 2, 5.5, 11]
            PRESETS = {"dsl": 1}
            """
        ) == []

    def test_dunder_exempt(self):
        assert rules_of(
            """
            __all__ = ["Packet"]
            """
        ) == []

    def test_immutable_values_exempt(self):
        assert rules_of(
            """
            _modes = ("batched", "stdlib")
            _names = frozenset({"a", "b"})
            _floor = 256
            """
        ) == []

    def test_function_and_class_scope_exempt(self):
        assert rules_of(
            """
            def build():
                cache = {}
                return cache

            class Endpoint:
                def __init__(self):
                    self.out_of_order = []
            """
        ) == []

    def test_only_applies_under_simnet(self):
        findings = check_determinism("analysis/cache.py", "_cache = {}\n")
        assert findings == []
        findings = check_determinism(
            "src/repro/simnet/packet.py", "_pool = []\n"
        )
        assert [f.rule for f in findings] == ["D105"]

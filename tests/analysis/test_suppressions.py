"""Suppression semantics: targeting, multi-rule lists, stale reporting."""

import textwrap

from repro.analysis import (
    Suppression,
    lint_paths,
    parse_suppression_comments,
    parse_suppressions,
)
from repro.analysis.suppressions import apply_suppressions, stale_suppressions
from repro.analysis.findings import Finding


def write_tree(root, rel, source):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestTargeting:
    def test_trailing_comment_targets_its_own_line(self):
        comments = parse_suppression_comments(
            "x = 1\nt = time.time()  # repro: allow[D103]\n"
        )
        assert [(c.line, c.target) for c in comments] == [(2, 2)]

    def test_comment_only_line_targets_the_next_line(self):
        comments = parse_suppression_comments(
            "# repro: allow[D103] startup timestamp, never enters records\n"
            "t = time.time()\n"
        )
        assert [(c.line, c.target) for c in comments] == [(1, 2)]

    def test_justification_text_after_bracket_is_ignored(self):
        comments = parse_suppression_comments(
            "# repro: allow[A601] blocking read happens before the loop starts\n"
            "pass\n"
        )
        assert comments[0].rules == {"A601"}

    def test_multi_rule_allow_list(self):
        comments = parse_suppression_comments(
            "value = pick()  # repro: allow[D101, D104,A603]\n"
        )
        assert comments[0].rules == {"D101", "D104", "A603"}

    def test_allow_inside_string_literal_is_not_a_suppression(self):
        comments = parse_suppression_comments(
            'DOC = "example:  # repro: allow[D101]"\n'
        )
        assert comments == []

    def test_legacy_dict_view_merges_targets(self):
        allowed = parse_suppressions(
            "x = 1  # repro: allow[D101]\n"
            "y = 2\n"
            "z = 3  # repro: allow[D103, M201]\n"
        )
        assert allowed == {1: {"D101"}, 3: {"D103", "M201"}}


class TestApplication:
    def finding(self, line, rule="D103"):
        return Finding(path="m.py", line=line, col=1, rule=rule, message="x")

    def test_matching_rule_suppresses_and_marks_used(self):
        comments = [Suppression(line=2, target=2, rules={"D103"})]
        findings = apply_suppressions([self.finding(2)], comments)
        assert findings[0].suppressed
        assert comments[0].used

    def test_line_above_comment_suppresses_next_line(self):
        comments = parse_suppression_comments(
            "# repro: allow[D103]\nt = time.time()\n"
        )
        findings = apply_suppressions([self.finding(2)], comments)
        assert findings[0].suppressed

    def test_wrong_rule_does_not_suppress_and_stays_stale(self):
        comments = [Suppression(line=2, target=2, rules={"D101"})]
        findings = apply_suppressions([self.finding(2)], comments)
        assert not findings[0].suppressed
        assert stale_suppressions(comments) == comments

    def test_wildcard_matches_any_rule(self):
        comments = [Suppression(line=2, target=2, rules={"*"})]
        assert apply_suppressions([self.finding(2)], comments)[0].suppressed


class TestRunnerIntegration:
    def test_line_above_suppression_in_lint_run(self, tmp_path):
        write_tree(
            tmp_path, "simnet/mod.py",
            """
            import time

            # repro: allow[D103] boot timestamp, not simulation time
            T0 = time.time()
            """,
        )
        result = lint_paths([tmp_path], root=tmp_path)
        assert result.ok, [f.render() for f in result.new_findings]
        assert len(result.suppressed) == 1
        assert result.stale_suppressions == []

    def test_stale_suppression_reported_but_not_gating(self, tmp_path):
        write_tree(
            tmp_path, "simnet/mod.py",
            """
            x = 1  # repro: allow[D103]
            """,
        )
        result = lint_paths([tmp_path], root=tmp_path)
        assert result.ok  # stale waivers warn, they do not fail the run
        assert len(result.stale_suppressions) == 1
        stale = result.stale_suppressions[0]
        assert stale.path == "simnet/mod.py"
        assert stale.rules == {"D103"}

    def test_stale_suppressions_serialized_and_rendered(self, tmp_path):
        write_tree(tmp_path, "simnet/mod.py", "x = 1  # repro: allow[D101]\n")
        result = lint_paths([tmp_path], root=tmp_path)
        payload = result.to_dict()
        assert payload["stale_suppressions"][0]["rules"] == ["D101"]
        from repro.analysis import render_text

        assert "stale suppression" in render_text(result)

    def test_used_suppression_is_not_stale(self, tmp_path):
        write_tree(
            tmp_path, "simnet/mod.py",
            """
            import time
            a = time.time()  # repro: allow[D103]
            b = 1  # repro: allow[D103]
            """,
        )
        result = lint_paths([tmp_path], root=tmp_path)
        assert len(result.suppressed) == 1
        assert len(result.stale_suppressions) == 1
        assert result.stale_suppressions[0].line == 4

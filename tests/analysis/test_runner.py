"""Runner integration: suppressions, baseline round-trip, CLI, self-check."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    lint_paths,
    load_baseline,
    parse_suppressions,
    save_baseline,
)
from repro.cli import main

VIOLATION = textwrap.dedent(
    """
    import time


    def stamp():
        return time.time()
    """
)


def write_tree(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestSuppressions:
    def test_parse_single_and_multiple_rules(self):
        source = (
            "x = 1  # repro: allow[D101]\n"
            "y = 2\n"
            "z = 3  # repro: allow[D103, M201]\n"
        )
        allowed = parse_suppressions(source)
        assert allowed == {1: {"D101"}, 3: {"D103", "M201"}}

    def test_allow_comment_silences_finding(self, tmp_path):
        write_tree(
            tmp_path, "simnet/mod.py",
            "import time\nt0 = time.time()  # repro: allow[D103]\n",
        )
        result = lint_paths([tmp_path], root=tmp_path)
        assert result.new_findings == []
        assert len(result.suppressed) == 1
        assert result.ok

    def test_wildcard_allow(self, tmp_path):
        write_tree(
            tmp_path, "simnet/mod.py",
            "import time\nt0 = time.time()  # repro: allow[*]\n",
        )
        assert lint_paths([tmp_path], root=tmp_path).ok

    def test_wrong_rule_does_not_silence(self, tmp_path):
        write_tree(
            tmp_path, "simnet/mod.py",
            "import time\nt0 = time.time()  # repro: allow[D101]\n",
        )
        result = lint_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in result.new_findings] == ["D103"]


class TestBaseline:
    def test_round_trip_accepts_existing_findings(self, tmp_path):
        write_tree(tmp_path, "simnet/mod.py", VIOLATION)
        baseline = tmp_path / "lint-baseline.json"

        first = lint_paths([tmp_path], root=tmp_path)
        assert not first.ok
        save_baseline(baseline, first.findings)

        second = lint_paths([tmp_path], root=tmp_path, baseline_path=baseline)
        assert second.ok
        assert len(second.baselined) == 1

    def test_baseline_survives_line_renumbering(self, tmp_path):
        path = write_tree(tmp_path, "simnet/mod.py", VIOLATION)
        baseline = tmp_path / "lint-baseline.json"
        save_baseline(baseline, lint_paths([tmp_path], root=tmp_path).findings)

        path.write_text("# a new leading comment\n" + VIOLATION)
        moved = lint_paths([tmp_path], root=tmp_path, baseline_path=baseline)
        assert moved.ok, [f.render() for f in moved.new_findings]

    def test_new_violation_not_masked_by_baseline(self, tmp_path):
        write_tree(tmp_path, "simnet/mod.py", VIOLATION)
        baseline = tmp_path / "lint-baseline.json"
        save_baseline(baseline, lint_paths([tmp_path], root=tmp_path).findings)

        write_tree(
            tmp_path, "simnet/other.py",
            "import random\nx = random.random()\n",
        )
        result = lint_paths([tmp_path], root=tmp_path, baseline_path=baseline)
        assert [f.rule for f in result.new_findings] == ["D101"]

    def test_rejects_foreign_format(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_notes_never_enter_baseline(self, tmp_path):
        write_tree(
            tmp_path, "probes/p.py",
            'class P:\n    def stop(self):\n        return {"orphan": 1.0}\n',
        )
        result = lint_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in result.notes] == ["M202"]
        payload = save_baseline(tmp_path / "b.json", result.findings)
        assert payload["entries"] == []


class TestParseErrors:
    def test_syntax_error_reported_not_crashed(self, tmp_path):
        write_tree(tmp_path, "simnet/broken.py", "def f(:\n")
        result = lint_paths([tmp_path], root=tmp_path)
        assert not result.ok
        assert any("syntax error" in e for e in result.parse_errors)


class TestCli:
    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        write_tree(tmp_path, "simnet/ok.py", "x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_violation_exits_nonzero_with_location(
        self, tmp_path, capsys, monkeypatch
    ):
        write_tree(tmp_path, "simnet/mod.py", VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "simnet/mod.py:6" in out
        assert "D103" in out

    def test_update_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        write_tree(tmp_path, "simnet/mod.py", VIOLATION)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "lint-baseline.json"
        assert main(["lint", str(tmp_path), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_json_output(self, tmp_path, capsys, monkeypatch):
        write_tree(tmp_path, "simnet/mod.py", VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path), "--json"]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["schema"] == "repro-lint-v1"
        payload = envelope["data"]
        assert payload["ok"] is False
        assert payload["new"][0]["rule"] == "D103"

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D101", "D104", "M201", "F303"):
            assert rule_id in out


class TestSelfCheck:
    def test_own_source_tree_is_clean_against_baseline(self, repo_lint_result):
        assert repo_lint_result.ok, [
            f.render() for f in repo_lint_result.new_findings
        ] + repo_lint_result.parse_errors

    def test_committed_baseline_is_zero_entry_for_simnet_and_faults(self):
        from tests.analysis.conftest import REPO_ROOT

        data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert data["format"] == "repro-lint-baseline-v1"
        assert [
            e for e in data["entries"]
            if e["path"].startswith(("src/repro/simnet", "src/repro/faults"))
        ] == []

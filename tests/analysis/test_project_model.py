"""Lint v2 engine: equivalence across modes, cache behavior, invalidation."""

import json
import textwrap
from pathlib import Path

from repro.analysis import (
    ENGINE_VERSION,
    ModelCache,
    analyze_file,
    lint_paths,
)
from repro.analysis.project_model import CACHE_DIR_NAME, build_project_model
from repro.cli import main

TREE = {
    "simnet/clock.py": """
        import time


        def stamp():
            return time.time()
        """,
    "probes/player.py": """
        class PlayerProbe:
            def metrics(self):
                return {"stall_events": 1.0, "orphan_metric": 2.0}
        """,
    "core/selection.py": """
        SELECTED_FEATURES = ("stall_events", "ghost_metric")
        """,
    "serve/loop.py": """
        import time

        PENDING = []


        async def handler(item):
            time.sleep(0.1)
            PENDING.append(item)
        """,
    "schemas.py": """
        EXTERNAL = "external:"
        RECORD_V1 = "repro-record-v1"


        class WireSchema:
            def __init__(self, tag, doc, producers=(), consumers=()):
                pass


        SCHEMAS = (
            WireSchema(
                tag=RECORD_V1,
                doc="records",
                producers=("pipeline/records.py",),
                consumers=(EXTERNAL + "tests",),
            ),
        )
        """,
    "pipeline/records.py": """
        def write(payload):
            # declared producer of repro records, but the reference to the
            # registry constant is gone -> W702 at the registry entry
            payload["written"] = True
        """,
}


def write_tree(root: Path) -> None:
    for rel, source in TREE.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def fingerprint(result):
    """The full serialized result — what bit-identical means."""
    return json.dumps(result.to_dict(), sort_keys=True)


class TestEquivalence:
    def test_sequential_parallel_and_cache_modes_bit_identical(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = tmp_path / CACHE_DIR_NAME

        sequential = lint_paths([tmp_path], root=tmp_path, jobs=1)
        parallel = lint_paths([tmp_path], root=tmp_path, jobs=4)
        cold = lint_paths(
            [tmp_path], root=tmp_path, jobs=4, cache_dir=cache_dir
        )
        warm = lint_paths(
            [tmp_path], root=tmp_path, jobs=1, cache_dir=cache_dir
        )

        expected = fingerprint(sequential)
        assert fingerprint(parallel) == expected
        assert fingerprint(cold) == expected
        # warm reuses everything, which must not change a single byte of
        # the findings (only the cache counters may differ)
        assert warm.files_reused == len(TREE)
        warm.files_reused = cold.files_reused
        warm.files_analyzed = cold.files_analyzed
        assert fingerprint(warm) == expected

    def test_expected_rules_found(self, tmp_path):
        write_tree(tmp_path)
        result = lint_paths([tmp_path], root=tmp_path)
        rules = sorted({f.rule for f in result.findings})
        assert rules == ["A601", "A603", "D103", "M201", "M202", "W702"]


class TestCache:
    def test_warm_run_reuses_unchanged_files(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = tmp_path / CACHE_DIR_NAME
        cold = lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)
        assert cold.files_analyzed == len(TREE)
        assert cold.files_reused == 0
        assert (cache_dir / "model.json").exists()

        warm = lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)
        assert warm.files_reused == len(TREE)
        assert warm.files_analyzed == 0

    def test_changed_file_reanalyzed_others_reused(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = tmp_path / CACHE_DIR_NAME
        lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)

        target = tmp_path / "simnet" / "clock.py"
        target.write_text(target.read_text() + "\nimport random\nr = random.random()\n")
        second = lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)
        assert second.files_analyzed == 1
        assert second.files_reused == len(TREE) - 1
        assert "D101" in {f.rule for f in second.findings}

    def test_cache_file_is_tagged_and_versioned(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = tmp_path / CACHE_DIR_NAME
        lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)
        payload = json.loads((cache_dir / "model.json").read_text())
        assert payload["format"] == "repro-lint-cache-v1"
        assert payload["engine"] == ENGINE_VERSION

    def test_engine_version_change_invalidates_everything(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = tmp_path / CACHE_DIR_NAME
        lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)

        model = cache_dir / "model.json"
        payload = json.loads(model.read_text())
        payload["engine"] = "0:stale"
        model.write_text(json.dumps(payload))

        rerun = lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)
        assert rerun.files_reused == 0
        assert rerun.files_analyzed == len(TREE)

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = tmp_path / CACHE_DIR_NAME
        cache_dir.mkdir()
        (cache_dir / "model.json").write_text("{ not json")
        result = lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)
        assert result.files_analyzed == len(TREE)

    def test_cache_dir_not_linted(self, tmp_path):
        write_tree(tmp_path)
        cache_dir = tmp_path / CACHE_DIR_NAME
        cache_dir.mkdir()
        (cache_dir / "junk.py").write_text("import time\nt = time.time()\n")
        result = lint_paths([tmp_path], root=tmp_path, cache_dir=cache_dir)
        assert result.files_checked == len(TREE)

    def test_library_default_writes_no_cache(self, tmp_path):
        write_tree(tmp_path)
        lint_paths([tmp_path], root=tmp_path)
        assert not (tmp_path / CACHE_DIR_NAME).exists()


class TestFileFactsRoundTrip:
    def test_facts_survive_serialization(self):
        source = textwrap.dedent(
            """
            import time

            CACHE = {}


            async def handler(key):  # repro: allow[A601]
                time.sleep(1)
                CACHE[key] = 1
            """
        )
        facts = analyze_file("serve/mod.py", "serve/mod.py", source)
        from repro.analysis import FileFacts

        clone = FileFacts.from_dict(
            json.loads(json.dumps(facts.to_dict()))
        )
        assert clone.sha == facts.sha
        assert [f.rule for f in clone.findings] == [
            f.rule for f in facts.findings
        ]
        assert [s.to_dict() for s in clone.suppressions] == [
            s.to_dict() for s in facts.suppressions
        ]
        assert clone.wire is not None and facts.wire is not None
        assert clone.wire.rel == facts.wire.rel

    def test_syntax_error_recorded_not_raised(self):
        facts = analyze_file("bad.py", "bad.py", "def f(:\n")
        assert facts.parse_error is not None
        assert facts.findings == []


class TestModelCacheStore:
    def test_store_load_round_trip(self, tmp_path):
        facts = analyze_file("m.py", "m.py", "x = 1\n")
        cache = ModelCache(tmp_path / "c")
        cache.store({"m.py": facts})
        loaded = cache.load()
        assert set(loaded) == {"m.py"}
        assert loaded["m.py"].sha == facts.sha

    def test_parallel_and_sequential_facts_identical(self, tmp_path):
        write_tree(tmp_path)
        items = []
        for rel in sorted(TREE):
            items.append((rel, rel, (tmp_path / rel).read_text()))
        seq, _ = build_project_model(items, jobs=1)
        par, _ = build_project_model(items, jobs=4)
        assert [f.to_dict() for f in seq] == [f.to_dict() for f in par]


class TestCliFlags:
    def test_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        main(["lint", str(tmp_path), "--no-cache"])
        capsys.readouterr()
        assert not (tmp_path / CACHE_DIR_NAME).exists()

    def test_cli_default_populates_cache(self, tmp_path, capsys, monkeypatch):
        write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        main(["lint", str(tmp_path)])
        capsys.readouterr()
        assert (tmp_path / CACHE_DIR_NAME / "model.json").exists()

    def test_jobs_flag_accepted(self, tmp_path, capsys, monkeypatch):
        write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = main(["lint", str(tmp_path), "--jobs", "2", "--no-cache"])
        assert code == 1  # the tree has real findings
        assert "D103" in capsys.readouterr().out

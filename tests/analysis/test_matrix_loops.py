"""Matrix-loop pass (M203): per-row loops in ML predict/transform paths."""

import textwrap

from repro.analysis.matrix_loops import check_matrix_loops


def rules_of(source):
    return [
        f.rule for f in check_matrix_loops("mod.py", textwrap.dedent(source))
    ]


class TestM203:
    def test_range_len_over_param_flagged(self):
        source = """
        def predict(self, X):
            out = []
            for i in range(len(X)):
                out.append(score(X[i]))
            return out
        """
        assert rules_of(source) == ["M203"]

    def test_range_shape_zero_flagged(self):
        source = """
        def transform_rows(self, rows):
            for i in range(rows.shape[0]):
                handle(rows[i])
        """
        assert rules_of(source) == ["M203"]

    def test_zip_over_param_flagged(self):
        source = """
        def predict(self, X, y):
            for row, label in zip(X, y):
                compare(row, label)
        """
        assert rules_of(source) == ["M203"]

    def test_enumerate_over_param_flagged(self):
        source = """
        def transform(self, matrix):
            for i, row in enumerate(matrix):
                emit(i, row)
        """
        assert rules_of(source) == ["M203"]

    def test_loop_over_local_is_clean(self):
        source = """
        def predict(self, X):
            n = len(X)
            chunk = 512
            for start in range(0, n, chunk):
                consume(X[start:start + chunk])
        """
        assert rules_of(source) == []

    def test_loop_over_classes_is_clean(self):
        source = """
        def predict(self, X):
            scores = []
            for c in range(self.n_classes):
                scores.append(self.score_class(X, c))
            return scores
        """
        assert rules_of(source) == []

    def test_non_hot_function_is_clean(self):
        source = """
        def fit(self, X, y):
            for i in range(len(X)):
                self.update(X[i], y[i])
        """
        assert rules_of(source) == []

    def test_object_reference_helper_is_clean(self):
        source = """
        def _predict_object(self, X):
            for i in range(len(X)):
                walk(X[i])
        """
        assert rules_of(source) == []

    def test_nested_helper_params_not_hot(self):
        source = """
        def predict(self, X):
            def emit(rows):
                for i in range(len(rows)):
                    yield rows[i]
            return collect(emit(X))
        """
        assert rules_of(source) == []

    def test_nested_loop_in_hot_function_flagged(self):
        source = """
        def predict(self, X):
            for c in self.classes:
                for i, row in enumerate(X):
                    vote(c, row)
        """
        assert rules_of(source) == ["M203"]

    def test_finding_carries_location_and_source(self):
        source = textwrap.dedent(
            """
            def predict(self, X):
                for i in range(len(X)):
                    pass
            """
        )
        (finding,) = check_matrix_loops("repro/ml/model.py", source)
        assert finding.path == "repro/ml/model.py"
        assert finding.line == 3
        assert finding.source == "for i in range(len(X)):"


class TestRouting:
    def test_ml_package_routed_and_suppressible(self, tmp_path):
        from repro.analysis import lint_paths

        pkg = tmp_path / "repro" / "ml"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "slow.py").write_text(
            textwrap.dedent(
                """
                def predict(X):
                    for i in range(len(X)):
                        pass
                """
            )
        )
        (pkg / "waived.py").write_text(
            textwrap.dedent(
                """
                def predict(X):
                    # repro: allow[M203] scalar fallback kept for testing
                    for i in range(len(X)):
                        pass
                """
            )
        )
        result = lint_paths([tmp_path])
        gating = [f for f in result.new_findings if f.rule == "M203"]
        assert [f.path for f in gating] == [str(pkg / "slow.py")]
        waived = [f for f in result.suppressed if f.rule == "M203"]
        assert [f.path for f in waived] == [str(pkg / "waived.py")]

    def test_outside_ml_not_routed(self, tmp_path):
        from repro.analysis import lint_paths

        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "slow.py").write_text(
            textwrap.dedent(
                """
                def predict(X):
                    for i in range(len(X)):
                        pass
                """
            )
        )
        result = lint_paths([tmp_path])
        assert [f for f in result.new_findings if f.rule == "M203"] == []

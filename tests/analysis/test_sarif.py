"""SARIF 2.1.0 output: document shape, levels, baseline states, CLI flag."""

import json
import textwrap

from repro.analysis import lint_paths, save_baseline, to_sarif, write_sarif
from repro.cli import main

VIOLATION = textwrap.dedent(
    """
    import time


    def stamp():
        return time.time()
    """
)


def write_tree(root, rel, source):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def lint_violation(tmp_path, **kwargs):
    write_tree(tmp_path, "simnet/mod.py", VIOLATION)
    return lint_paths([tmp_path], root=tmp_path, **kwargs)


class TestDocumentShape:
    def test_header_and_tool(self, tmp_path):
        doc = to_sarif(lint_violation(tmp_path))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "D103" in rule_ids

    def test_result_location_and_level(self, tmp_path):
        doc = to_sarif(lint_violation(tmp_path))
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "D103"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "simnet/mod.py"
        assert location["region"]["startLine"] == 6
        assert result["baselineState"] == "new"

    def test_fingerprint_matches_baseline_identity(self, tmp_path):
        lint = lint_violation(tmp_path)
        doc = to_sarif(lint)
        fp = doc["runs"][0]["results"][0]["partialFingerprints"]
        assert fp["reproLintFingerprint/v1"] == lint.new_findings[0].fingerprint()

    def test_baselined_findings_marked_unchanged(self, tmp_path):
        write_tree(tmp_path, "simnet/mod.py", VIOLATION)
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline, lint_paths([tmp_path], root=tmp_path).findings
        )
        doc = to_sarif(
            lint_paths([tmp_path], root=tmp_path, baseline_path=baseline)
        )
        states = [r["baselineState"] for r in doc["runs"][0]["results"]]
        assert states == ["unchanged"]

    def test_notes_exported_at_note_level(self, tmp_path):
        write_tree(
            tmp_path, "probes/p.py",
            'class P:\n    def stop(self):\n        return {"orphan": 1.0}\n',
        )
        doc = to_sarif(lint_paths([tmp_path], root=tmp_path))
        levels = {r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]}
        assert levels["M202"] == "note"

    def test_suppressed_findings_not_exported(self, tmp_path):
        write_tree(
            tmp_path, "simnet/mod.py",
            "import time\nt = time.time()  # repro: allow[D103]\n",
        )
        doc = to_sarif(lint_paths([tmp_path], root=tmp_path))
        assert doc["runs"][0]["results"] == []

    def test_invocation_reflects_outcome(self, tmp_path):
        doc = to_sarif(lint_violation(tmp_path))
        invocation = doc["runs"][0]["invocations"][0]
        assert invocation["exitCode"] == 1
        assert invocation["executionSuccessful"] is True


class TestWriteSarif:
    def test_written_file_is_valid_json(self, tmp_path):
        out = tmp_path / "lint.sarif"
        count = write_sarif(out, lint_violation(tmp_path))
        payload = json.loads(out.read_text())
        assert count == len(payload["runs"][0]["results"]) == 1


class TestCliFlag:
    def test_sarif_flag_writes_log_alongside_text(
        self, tmp_path, capsys, monkeypatch
    ):
        write_tree(tmp_path, "simnet/mod.py", VIOLATION)
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "lint.sarif"
        assert main(
            ["lint", str(tmp_path), "--sarif", str(out), "--no-cache"]
        ) == 1
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["runs"][0]["results"][0]["ruleId"] == "D103"
        # the human report still goes to stdout
        assert "D103" in capsys.readouterr().out

"""A6xx async-discipline pass: firing and clean cases."""

import textwrap

import pytest

from repro.analysis import check_async_discipline


def rules_for(source: str):
    return sorted(
        f.rule for f in check_async_discipline("mod.py", textwrap.dedent(source))
    )


class TestA601Blocking:
    def test_time_sleep_in_coroutine_fires(self):
        assert rules_for(
            """
            import time

            async def handler():
                time.sleep(0.1)
            """
        ) == ["A601"]

    def test_aliased_import_still_fires(self):
        assert rules_for(
            """
            import time as t

            async def handler():
                t.sleep(0.1)
            """
        ) == ["A601"]

    def test_from_import_fires(self):
        assert rules_for(
            """
            from time import sleep

            async def handler():
                sleep(0.1)
            """
        ) == ["A601"]

    def test_open_and_path_helpers_fire(self):
        assert rules_for(
            """
            from pathlib import Path

            async def handler(path):
                open(path).read()
                Path(path).read_text()
            """
        ) == ["A601", "A601"]

    def test_subprocess_and_urlopen_fire(self):
        assert rules_for(
            """
            import subprocess
            import urllib.request

            async def handler():
                subprocess.run(["ls"])
                urllib.request.urlopen("http://x")
            """
        ) == ["A601", "A601"]

    def test_sleep_in_sync_function_is_clean(self):
        assert rules_for(
            """
            import time

            def poll():
                time.sleep(0.1)
            """
        ) == []

    def test_sleep_in_nested_sync_def_is_clean(self):
        # the executor callback is exactly where blocking work belongs
        assert rules_for(
            """
            import time

            async def handler(loop):
                def work():
                    time.sleep(0.1)
                await loop.run_in_executor(None, work)
            """
        ) == []

    def test_asyncio_sleep_is_clean(self):
        assert rules_for(
            """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
            """
        ) == []

    def test_nested_async_def_inside_sync_def_checked(self):
        assert rules_for(
            """
            import time

            def factory():
                async def inner():
                    time.sleep(1)
                return inner
            """
        ) == ["A601"]


class TestA602Unawaited:
    def test_bare_call_of_module_coroutine_fires(self):
        assert rules_for(
            """
            async def worker():
                pass

            async def main():
                worker()
            """
        ) == ["A602"]

    def test_self_method_call_fires(self):
        assert rules_for(
            """
            class Server:
                async def flush(self):
                    pass

                async def run(self):
                    self.flush()
            """
        ) == ["A602"]

    def test_awaited_and_tasked_calls_are_clean(self):
        assert rules_for(
            """
            import asyncio

            async def worker():
                pass

            async def main():
                await worker()
                task = asyncio.create_task(worker())
                await task
            """
        ) == []

    def test_assigned_coroutine_object_is_clean(self):
        # deliberate capture for later awaiting/gathering
        assert rules_for(
            """
            import asyncio

            async def worker():
                pass

            async def main():
                pending = [worker() for _ in range(3)]
                await asyncio.gather(*pending)
            """
        ) == []

    def test_sync_helper_call_is_clean(self):
        assert rules_for(
            """
            def helper():
                pass

            async def main():
                helper()
            """
        ) == []


class TestA603SharedMutation:
    def test_module_dict_item_assignment_fires(self):
        assert rules_for(
            """
            CACHE = {}

            async def handler(key, value):
                CACHE[key] = value
            """
        ) == ["A603"]

    def test_module_list_append_fires(self):
        assert rules_for(
            """
            PENDING = []

            async def handler(item):
                PENDING.append(item)
            """
        ) == ["A603"]

    def test_class_attribute_mutation_fires(self):
        assert rules_for(
            """
            class Registry:
                entries = {}

                async def put(self, key, value):
                    self.entries[key] = value
            """
        ) == ["A603"]

    def test_del_item_fires(self):
        assert rules_for(
            """
            SESSIONS = {}

            async def drop(key):
                del SESSIONS[key]
            """
        ) == ["A603"]

    def test_atomic_swap_is_clean(self):
        # the sanctioned idiom: build new state, rebind wholesale
        assert rules_for(
            """
            CACHE = {}

            async def handler(key, value):
                global CACHE
                updated = dict(CACHE)
                updated[key] = value
                CACHE = updated
            """
        ) == []

    def test_instance_state_from_init_is_clean(self):
        # per-instance containers are owned by one connection/task chain
        assert rules_for(
            """
            class Connection:
                def __init__(self):
                    self.queue = []

                async def push(self, item):
                    self.queue.append(item)
            """
        ) == []

    def test_local_container_is_clean(self):
        assert rules_for(
            """
            async def handler(items):
                batch = []
                for item in items:
                    batch.append(item)
                return batch
            """
        ) == []

    def test_mutation_in_sync_function_is_clean(self):
        assert rules_for(
            """
            CACHE = {}

            def prime(key, value):
                CACHE[key] = value
            """
        ) == []


class TestServeDogfood:
    """The serving layer is the A6xx pass's home turf: it must stay clean
    (its atomic-swap and per-connection-state idioms are the sanctioned
    patterns the rules encode), and the pass must actually walk it."""

    def test_serve_package_is_a6xx_clean(self, repo_lint_result):
        a6xx = [
            f for f in repo_lint_result.findings
            if f.rule.startswith("A6") and not f.suppressed
        ]
        assert a6xx == [], [f.render() for f in a6xx]

    def test_pass_really_walks_serve_coroutines(self):
        # guard against the pass silently skipping the package: seeding a
        # violation into the real serve/http.py source must fire
        from tests.analysis.conftest import REPO_ROOT

        source = (REPO_ROOT / "src/repro/serve/http.py").read_text()
        assert "async def drain" in source
        seeded = source.replace(
            "async def drain(self) -> None:",
            "async def drain(self) -> None:\n"
            "        import time\n"
            "        time.sleep(1)",
            1,
        )
        assert "A601" in {
            f.rule for f in check_async_discipline("serve/http.py", seeded)
        }


class TestSeverities:
    @pytest.mark.parametrize("rule,severity", [
        ("A601", "error"), ("A602", "error"), ("A603", "warning"),
    ])
    def test_catalog_severity(self, rule, severity):
        from repro.analysis import RULES

        assert RULES[rule].severity == severity

"""Fault-lifecycle pass (F3xx): fixture fault classes."""

import textwrap

from repro.analysis.lifecycle import check_lifecycle

GOOD = textwrap.dedent(
    """
    from repro.faults.base import Fault

    class GoodFault(Fault):
        name = "good_fault"
        VANTAGE_SCOPE = ("mobile", "router")

        def apply(self, testbed):
            self.active = True

        def clear(self, testbed):
            if not self.active:
                return
            self.active = False
    """
)


def rules_of(source):
    return [f.rule for f in check_lifecycle("faults/mod.py", textwrap.dedent(source))]


class TestLifecyclePairing:
    def test_well_formed_fault_is_clean(self):
        assert check_lifecycle("faults/mod.py", GOOD) == []

    def test_missing_clear_is_f301(self):
        source = """
        from repro.faults.base import Fault

        class Leaky(Fault):
            name = "leaky"
            VANTAGE_SCOPE = ("mobile",)

            def apply(self, testbed):
                self.active = True
        """
        assert "F301" in rules_of(source)

    def test_missing_apply_is_f301(self):
        source = """
        from repro.faults.base import Fault

        class Backwards(Fault):
            name = "backwards"
            VANTAGE_SCOPE = ("mobile",)

            def clear(self, testbed):
                if not self.active:
                    return
                self.active = False
        """
        assert "F301" in rules_of(source)

    def test_abstract_intermediate_exempt(self):
        source = """
        from repro.faults.base import Fault

        class Intermediate(Fault):
            def band_pair(self):
                return (self.MILD, self.SEVERE)
        """
        assert rules_of(source) == []

    def test_non_fault_class_ignored(self):
        source = """
        class Probe:
            name = "probe"

            def apply(self):
                pass
        """
        assert rules_of(source) == []


class TestActiveProtocol:
    def test_apply_without_active_flag_is_f302(self):
        source = GOOD.replace("self.active = True", "pass")
        assert "F302" in [f.rule for f in check_lifecycle("faults/m.py", source)]

    def test_clear_without_reset_is_f302(self):
        source = GOOD.replace(
            "if not self.active:\n            return\n        self.active = False",
            "pass",
        )
        assert "F302" in [f.rule for f in check_lifecycle("faults/m.py", source)]

    def test_clear_without_guard_is_f302(self):
        source = GOOD.replace(
            "if not self.active:\n            return\n        self.active = False",
            "self.active = False",
        )
        findings = check_lifecycle("faults/m.py", source)
        assert [f.rule for f in findings] == ["F302"]
        assert "guard" in findings[0].message


class TestVantageScope:
    def test_missing_scope_is_f303(self):
        source = GOOD.replace('VANTAGE_SCOPE = ("mobile", "router")\n', "")
        assert "F303" in [f.rule for f in check_lifecycle("faults/m.py", source)]

    def test_unknown_vantage_point_is_f303(self):
        source = GOOD.replace('("mobile", "router")', '("mobile", "satellite")')
        findings = check_lifecycle("faults/m.py", source)
        assert [f.rule for f in findings] == ["F303"]
        assert "satellite" in findings[0].message

    def test_empty_scope_is_f303(self):
        source = GOOD.replace('("mobile", "router")', "()")
        assert "F303" in [f.rule for f in check_lifecycle("faults/m.py", source)]


class TestRealFaults:
    def test_every_registered_fault_declares_scope(self):
        from repro.faults import base as fault_base
        from repro.faults.base import FAULT_NAMES, make_fault

        for name in FAULT_NAMES:
            fault = make_fault(name, "mild")
            assert fault.vantage_scope, name
            assert set(fault.vantage_scope) <= {"mobile", "router", "server"}

    def test_make_fault_default_rng_is_reproducible(self):
        from repro.faults.base import make_fault

        a = make_fault("wan_shaping", "mild")
        b = make_fault("wan_shaping", "mild")
        assert a.rng.random() == b.rng.random()

    def test_repo_faults_are_clean(self, repo_lint_result):
        f3xx = [
            f for f in repo_lint_result.findings if f.rule.startswith("F3")
        ]
        assert f3xx == [], [f.render() for f in f3xx]

"""W7xx wire-schema pass: registry extraction, firing and clean trees."""

import textwrap

from repro.analysis import check_wire_schema, extract_wire_facts

_REGISTRY_TEMPLATE = textwrap.dedent(
    """
    EXTERNAL = "external:"

    RECORD_V1 = "repro-record-v1"
    TRACE_V1 = "repro-trace-v1"
    {extra_constants}

    class WireSchema:
        def __init__(self, tag, doc, producers=(), consumers=(), legacy=False):
            pass


    SCHEMAS = (
        WireSchema(
            tag=RECORD_V1,
            doc="records",
            {record_sides}
        ),
        WireSchema(
            tag=TRACE_V1,
            doc="traces",
            producers=("writer.py",),
            consumers=(EXTERNAL + "dashboards",),
        ),
        {extra_entries}
    )
    """
)


def make_registry(
    record_sides=(
        'producers=("writer.py",),',
        'consumers=("reader.py", EXTERNAL + "tests"),',
    ),
    extra_constants="",
    extra_entries="",
):
    return _REGISTRY_TEMPLATE.format(
        record_sides="\n        ".join(record_sides),
        extra_constants=extra_constants,
        extra_entries=extra_entries,
    )


REGISTRY = make_registry()


def facts_for(tree):
    """tree: {rel: source} -> extracted facts list."""
    return [
        extract_wire_facts(rel, textwrap.dedent(source))
        for rel, source in sorted(tree.items())
    ]


def rules_for(tree):
    return sorted(f.rule for f in check_wire_schema(facts_for(tree)))


CLEAN_WRITER = """
    from schemas import RECORD_V1, TRACE_V1

    def write(payload):
        payload["format"] = RECORD_V1
        payload["trace"] = TRACE_V1
"""

CLEAN_READER = """
    from schemas import RECORD_V1

    def read(payload):
        return payload.get("format") == RECORD_V1
"""


class TestRegistryExtraction:
    def test_constants_and_entries_recovered(self):
        facts = extract_wire_facts("schemas.py", REGISTRY)
        assert facts.registry_constants == {
            "RECORD_V1": "repro-record-v1",
            "TRACE_V1": "repro-trace-v1",
        }
        tags = {e.tag for e in facts.registry_entries}
        assert tags == {"repro-record-v1", "repro-trace-v1"}
        record = next(
            e for e in facts.registry_entries if e.tag == "repro-record-v1"
        )
        assert record.producers == ("writer.py",)
        assert record.consumers == ("reader.py", "external:tests")

    def test_registry_module_emits_no_literal_findings(self):
        facts = extract_wire_facts("schemas.py", REGISTRY)
        assert facts.tag_literals == []


class TestCleanTree:
    def test_balanced_registry_is_clean(self):
        assert rules_for({
            "schemas.py": REGISTRY,
            "writer.py": CLEAN_WRITER,
            "reader.py": CLEAN_READER,
        }) == []

    def test_absent_declared_module_is_skipped(self):
        # partial lint runs must not invent missing-reference findings
        assert rules_for({
            "schemas.py": REGISTRY,
            "writer.py": CLEAN_WRITER,
        }) == []


class TestW701Literals:
    def test_tag_literal_outside_registry_fires(self):
        assert rules_for({
            "schemas.py": REGISTRY,
            "writer.py": CLEAN_WRITER,
            "reader.py": CLEAN_READER,
            "rogue.py": 'FORMAT = "repro-record-v1"\n',
        }) == ["W701"]

    def test_unregistered_literal_still_fires(self):
        # the literal is the problem even before anyone registers the tag
        assert rules_for({
            "rogue.py": 'FORMAT = "repro-mystery-v9"\n',
        }) == ["W701"]

    def test_fstring_tag_construction_fires(self):
        assert rules_for({
            "rogue.py": 'def tag(cmd):\n    return f"repro-{cmd}-v1"\n',
        }) == ["W701"]

    def test_prose_mentioning_tags_is_clean(self):
        assert rules_for({
            "doc.py": '"""The repro-record-v1 format is documented here."""\n',
        }) == []

    def test_non_tag_strings_are_clean(self):
        assert rules_for({
            "mod.py": 'x = "repro-tools"\ny = "v1"\n',
        }) == []


class TestW702Balance:
    def test_missing_producer_fires(self):
        registry = make_registry(record_sides=(
            'consumers=("reader.py", EXTERNAL + "tests"),',
        ))
        findings = check_wire_schema(facts_for({
            "schemas.py": registry,
            "writer.py": CLEAN_WRITER,
            "reader.py": CLEAN_READER,
        }))
        assert [f.rule for f in findings] == ["W702"]
        assert "no producer" in findings[0].message

    def test_legacy_tag_needs_no_producer(self):
        registry = make_registry(record_sides=(
            'consumers=("reader.py", EXTERNAL + "tests"),',
            "legacy=True,",
        ))
        assert rules_for({
            "schemas.py": registry,
            "writer.py": CLEAN_WRITER,
            "reader.py": CLEAN_READER,
        }) == []

    def test_missing_consumer_fires(self):
        registry = make_registry(record_sides=(
            'producers=("writer.py",),',
        ))
        findings = check_wire_schema(facts_for({
            "schemas.py": registry,
            "writer.py": CLEAN_WRITER,
        }))
        assert [f.rule for f in findings] == ["W702"]
        assert "no consumer" in findings[0].message

    def test_declared_module_that_never_references_fires(self):
        findings = check_wire_schema(facts_for({
            "schemas.py": REGISTRY,
            "writer.py": CLEAN_WRITER,
            "reader.py": "def read(payload):\n    return payload\n",
        }))
        assert [f.rule for f in findings] == ["W702"]
        assert "reader.py never references" in findings[0].message

    def test_findings_anchor_at_registry_entry(self):
        findings = check_wire_schema(facts_for({
            "schemas.py": REGISTRY,
            "writer.py": CLEAN_WRITER,
            "reader.py": "x = 1\n",
        }))
        assert findings and findings[0].path == "schemas.py"
        assert "WireSchema" in findings[0].source


class TestW703Envelopes:
    def test_registered_envelope_is_clean(self):
        registry = make_registry(
            extra_constants='STATUS_ENVELOPE_V1 = "repro-status-v1"',
            extra_entries=(
                "WireSchema(\n"
                "            tag=STATUS_ENVELOPE_V1,\n"
                '            doc="status envelope",\n'
                '            producers=("cli.py",),\n'
                '            consumers=(EXTERNAL + "scripts",),\n'
                "        ),"
            ),
        )
        facts = extract_wire_facts("schemas.py", registry)
        assert "repro-status-v1" in {e.tag for e in facts.registry_entries}
        findings = check_wire_schema([
            facts,
            extract_wire_facts(
                "cli.py",
                "def _print_envelope(command, data):\n"
                "    pass\n"
                "def main():\n"
                '    _print_envelope("status", {})\n',
            ),
            extract_wire_facts("writer.py", textwrap.dedent(CLEAN_WRITER)),
            extract_wire_facts("reader.py", textwrap.dedent(CLEAN_READER)),
        ])
        assert [f.rule for f in findings] == []

    def test_unregistered_envelope_fires(self):
        findings = check_wire_schema(facts_for({
            "schemas.py": REGISTRY,
            "writer.py": CLEAN_WRITER,
            "reader.py": CLEAN_READER,
            "cli.py": (
                "def _print_envelope(command, data):\n"
                "    pass\n"
                "def main():\n"
                '    _print_envelope("mystery", {})\n'
            ),
        }))
        assert [f.rule for f in findings] == ["W703"]
        assert "repro-mystery-v1" in findings[0].message

    def test_variable_command_is_skipped(self):
        assert rules_for({
            "schemas.py": REGISTRY,
            "writer.py": CLEAN_WRITER,
            "reader.py": CLEAN_READER,
            "cli.py": (
                "def _print_envelope(command, data):\n"
                "    pass\n"
                "def emit(command):\n"
                "    _print_envelope(command, {})\n"
            ),
        }) == []


class TestRealTree:
    def test_project_registry_is_balanced(self, repo_lint_result):
        w7xx = [
            f for f in repo_lint_result.findings
            if f.rule.startswith("W7") and not f.suppressed
        ]
        assert w7xx == [], [f.render() for f in w7xx]

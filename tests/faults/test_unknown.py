"""Tests for the unknown-fault injectors (DNS / middlebox)."""

import random

import pytest

from repro.faults.base import FAULT_NAMES
from repro.faults.unknown import DnsMisconfiguration, MiddleboxInterference
from repro.testbed.testbed import Testbed, TestbedConfig
from repro.video.catalog import VideoCatalog

CATALOG = VideoCatalog(size=10, duration_range=(12.0, 16.0), seed=5)
SD = next(v for v in CATALOG if v.definition == "SD")


def rng():
    return random.Random(0)


def test_unknown_faults_are_not_registered():
    assert "dns_misconfiguration" not in FAULT_NAMES
    assert "middlebox_interference" not in FAULT_NAMES


def test_dns_fault_delays_startup():
    bed = Testbed(TestbedConfig(seed=81))
    fault = DnsMisconfiguration("severe", rng())
    record = bed.run_video_session(SD, fault=fault)
    bed.shutdown()
    assert record.app_metrics["startup_delay"] >= fault.intensity["lookup_delay_s"]
    assert not hasattr(bed, "dns_delay_s") or bed.dns_delay_s == 0.0


def test_dns_fault_clear_restores():
    bed = Testbed(TestbedConfig(seed=82))
    fault = DnsMisconfiguration("mild", rng())
    fault.apply(bed)
    assert bed.dns_delay_s > 0
    fault.clear(bed)
    assert bed.dns_delay_s == 0.0
    bed.shutdown()


def test_middlebox_clamps_mss_on_wire():
    bed = Testbed(TestbedConfig(seed=83))
    fault = MiddleboxInterference("severe", rng())
    record = bed.run_video_session(SD, fault=fault)
    bed.shutdown()
    clamp = fault.intensity["mss_clamp"]
    # The server-side tap saw the clamped MSS negotiated back.
    assert record.features["mobile_tcp_s2c_mss"] <= clamp
    # SACK stripped: no SACK-bearing ACKs observed at the server.
    assert record.features["server_tcp_c2s_sack_acks"] == 0.0


def test_middlebox_inflates_packet_count():
    results = {}
    for use_fault in (False, True):
        bed = Testbed(TestbedConfig(seed=84))
        fault = MiddleboxInterference("severe", rng()) if use_fault else None
        record = bed.run_video_session(SD, fault=fault)
        bed.shutdown()
        results[use_fault] = record.features["mobile_tcp_s2c_data_pkts"]
    assert results[True] > results[False] * 1.5


def test_middlebox_clear_removes_transform():
    bed = Testbed(TestbedConfig(seed=85))
    fault = MiddleboxInterference("mild", rng())
    fault.apply(bed)
    assert bed.router.middlebox is not None
    fault.clear(bed)
    assert bed.router.middlebox is None
    bed.shutdown()


def test_locations_defined():
    assert DnsMisconfiguration("mild", rng()).location == "wan"
    assert MiddleboxInterference("mild", rng()).location == "lan"

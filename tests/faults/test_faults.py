"""Unit tests for fault injectors against a real testbed instance."""

import random

import pytest

from repro.faults import (
    FAULT_NAMES,
    LanCongestion,
    LanShaping,
    LowRssi,
    MobileLoad,
    WanCongestion,
    WanShaping,
    WifiInterference,
    make_fault,
)
from repro.faults.base import FAULT_LOCATIONS, Fault
from repro.testbed.testbed import Testbed, TestbedConfig


@pytest.fixture()
def bed():
    return Testbed(TestbedConfig(seed=11))


def rng():
    return random.Random(0)


def test_registry_covers_all_names():
    for name in FAULT_NAMES:
        fault = make_fault(name, "mild", rng())
        assert fault.name == name
        assert fault.location == FAULT_LOCATIONS[name]


def test_unknown_fault_rejected():
    with pytest.raises(KeyError):
        make_fault("dns_hijack", "mild", rng())


def test_invalid_severity_rejected():
    with pytest.raises(ValueError):
        WanShaping("catastrophic", rng())


def test_severity_bands_ordered():
    """Severe intensity draws are harsher than mild for every fault."""
    for _ in range(20):
        assert WanShaping("severe", rng()).band(
            WanShaping.MILD_RATE, WanShaping.SEVERE_RATE
        ) <= WanShaping.MILD_RATE[1]


def test_wan_shaping_apply_and_clear(bed):
    before = (bed.wan_down.rate_bps, bed.wan_down.delay, bed.wan_down.loss,
              bed.wan_up.rate_bps)
    fault = WanShaping("severe", rng())
    fault.apply(bed)
    assert bed.wan_down.rate_bps < before[0]
    assert bed.wan_down.delay > before[1]
    assert bed.wan_down.loss > before[2]
    assert fault.active
    fault.clear(bed)
    assert (bed.wan_down.rate_bps, bed.wan_down.delay, bed.wan_down.loss,
            bed.wan_up.rate_bps) == before
    assert not fault.active


def test_lan_shaping_caps_wlan_rate(bed):
    assert bed.medium.rate_cap is None
    fault = LanShaping("mild", rng())
    fault.apply(bed)
    assert bed.medium.rate_cap in LanShaping.MILD_RATES
    fault.clear(bed)
    assert bed.medium.rate_cap is None


def test_lan_shaping_lowers_observed_phy_rate(bed):
    from repro.simnet.packet import Packet, UDP

    fault = LanShaping("severe", rng())
    fault.apply(bed)
    bed.phone.bind(UDP, 9, lambda p: None)
    for _ in range(30):
        bed.router.interfaces["wlan0"].transmit(
            Packet(src="router", dst="phone", sport=1, dport=9, proto=UDP,
                   payload_len=1000)
        )
    bed.sim.run(until=2.0)
    st = bed.phone_station
    assert st.mean_phy_rate <= max(LanShaping.SEVERE_RATES)
    # RSSI is untouched: the phone can tell shaping from poor signal.
    assert st.rssi(bed.sim.now) > -70.0
    fault.clear(bed)


def test_lan_congestion_generates_bridge_traffic(bed):
    fault = LanCongestion("severe", rng())
    fault.apply(bed)
    bed.sim.run(until=2.0)
    assert fault._sink.pkts_received > 50
    assert bed.router.bridge.pkts_sent > 50
    fault.clear(bed)
    count = fault._sink.pkts_received
    bed.sim.run(until=4.0)
    assert fault._sink.pkts_received <= count + 2


def test_wan_congestion_loads_wan_channels(bed):
    fault = WanCongestion("severe", rng())
    fault.apply(bed)
    bed.sim.run(until=2.0)
    assert bed.wan_down.pkts_sent > 100  # downstream blast dominates
    assert bed.wan_up.pkts_sent > 10
    fault.clear(bed)


def test_mobile_load_raises_cpu_and_shrinks_memory(bed):
    device = bed.phone_device
    idle_cpu = device.cpu_utilization()
    idle_mem = device.free_memory()
    fault = MobileLoad("severe", rng())
    fault.apply(bed)
    assert device.cpu_utilization() > idle_cpu + 0.4
    assert device.free_memory() < idle_mem
    fault.clear(bed)
    assert device.cpu_utilization() == pytest.approx(idle_cpu)


def test_mobile_load_starves_decoder(bed):
    from repro.video.catalog import VideoProfile

    bed.phone_device.new_session(VideoProfile("v", "HD", "720p", 2e6, 30.0))
    assert bed.phone_device.decode_speed() > 0.9
    MobileLoad("severe", rng()).apply(bed)
    assert bed.phone_device.decode_speed() < 0.7


def test_low_rssi_targets_band(bed):
    fault = LowRssi("severe", rng())
    fault.apply(bed)
    st = bed.phone_station
    effective = st.base_rssi - st.attenuation
    assert LowRssi.SEVERE_RSSI[0] - 0.1 <= effective <= LowRssi.SEVERE_RSSI[1] + 0.1
    fault.clear(bed)
    assert st.attenuation == 0.0


def test_wifi_interference_sets_duty(bed):
    fault = WifiInterference("mild", rng())
    fault.apply(bed)
    assert WifiInterference.MILD_DUTY[0] <= bed.medium.interference_duty <= WifiInterference.MILD_DUTY[1]
    fault.clear(bed)
    assert bed.medium.interference_duty == 0.0


def test_clear_without_apply_is_noop(bed):
    for name in FAULT_NAMES:
        make_fault(name, "mild", rng()).clear(bed)


def test_intensity_randomised_per_instance():
    draws = {WanShaping("mild", random.Random(i)) for i in range(5)}
    rates = set()
    bed2 = Testbed(TestbedConfig(seed=12))
    for fault in draws:
        fault.apply(bed2)
        rates.add(fault.intensity["rate_bps"])
        fault.clear(bed2)
    assert len(rates) == 5


def test_abstract_fault_interface():
    fault = Fault("mild", rng())
    with pytest.raises(NotImplementedError):
        fault.apply(None)
    with pytest.raises(NotImplementedError):
        fault.clear(None)
